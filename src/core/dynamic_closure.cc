#include "core/dynamic_closure.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/chain_propagator.h"
#include "graph/topology.h"

namespace trel {

ClosureOptions DynamicClosure::DefaultOptions() {
  ClosureOptions options;
  options.labeling.gap = 64;
  options.labeling.reserve = 16;
  return options;
}

DynamicClosure::DynamicClosure(const ClosureOptions& options)
    : options_(options) {
  labels_.gap = options.labeling.gap;
  labels_.reserve = options.labeling.reserve;
  TREL_CHECK_GE(labels_.gap, 1);
  TREL_CHECK_GE(labels_.reserve, 0);
  TREL_CHECK_LT(labels_.reserve, labels_.gap);
}

StatusOr<DynamicClosure> DynamicClosure::Build(const Digraph& graph,
                                               const ClosureOptions& options) {
  TREL_ASSIGN_OR_RETURN(TreeCover cover,
                        ComputeTreeCover(graph, options.strategy,
                                         options.seed));
  TREL_ASSIGN_OR_RETURN(NodeLabels labels,
                        BuildLabels(graph, cover, options.labeling));
  DynamicClosure closure(options);
  closure.graph_ = graph;
  closure.AdoptCover(cover, std::move(labels));
  return closure;
}

StatusOr<DynamicClosure> DynamicClosure::BuildWithChains(
    const Digraph& graph, const ClosureOptions& options) {
  TREL_ASSIGN_OR_RETURN(ChainBuild chain,
                        BuildChainLabeling(graph, options.labeling));
  DynamicClosure closure(options);
  closure.graph_ = graph;
  closure.AdoptCover(chain.cover, std::move(chain.labels));
  closure.cover_is_chain_ = true;
  return closure;
}

Status DynamicClosure::RebuildWithChains() {
  auto chain = BuildChainLabeling(graph_, options_.labeling);
  if (!chain.ok()) return chain.status();
  AdoptCover(chain->cover, std::move(chain->labels));
  cover_is_chain_ = true;
  ++stats_.chain_rebuilds;
  return Status::Ok();
}

void DynamicClosure::AdoptCover(const TreeCover& cover, NodeLabels labels) {
  labels_ = std::move(labels);
  tree_parent_ = cover.parent;
  tree_children_ = cover.children;
  const NodeId n = graph_.NumNodes();
  reserve_remaining_.assign(n, labels_.reserve);
  is_refined_.assign(n, false);
  num_refined_ = 0;
  by_postorder_.clear();
  for (NodeId v = 0; v < n; ++v) {
    by_postorder_[labels_.postorder[v]] = v;
  }
  // Wholesale relabeling: every node's exported state may have moved.
  MarkAllDirty();
}

void DynamicClosure::MarkDirty(NodeId v) {
  if (!dirty_flag_[v]) {
    dirty_flag_[v] = true;
    dirty_list_.push_back(v);
  }
}

void DynamicClosure::MarkAllDirty() {
  const NodeId n = graph_.NumNodes();
  dirty_flag_.assign(n, true);
  dirty_list_.resize(n);
  for (NodeId v = 0; v < n; ++v) dirty_list_[v] = v;
}

void DynamicClosure::MarkClean() {
  for (NodeId v : dirty_list_) dirty_flag_[v] = false;
  dirty_list_.clear();
}

ClosureDelta DynamicClosure::ExportDelta() {
  ClosureDelta delta;
  delta.num_nodes = graph_.NumNodes();
  std::sort(dirty_list_.begin(), dirty_list_.end());
  delta.entries.reserve(dirty_list_.size());
  for (NodeId v : dirty_list_) {
    delta.entries.push_back(NodeLabelDelta{v, labels_.postorder[v],
                                           labels_.tree_interval[v],
                                           labels_.intervals[v]});
  }
  MarkClean();
  return delta;
}

void DynamicClosure::GrowNodeState() {
  labels_.postorder.push_back(0);
  labels_.tree_interval.push_back(Interval{0, 0});
  labels_.intervals.emplace_back();
  tree_parent_.push_back(kNoNode);
  tree_children_.emplace_back();
  // Dynamically inserted nodes get no refinement pool: their slack region
  // overlaps the hole used for future siblings.  Renumber()/Reoptimize()
  // re-grant full pools.
  reserve_remaining_.push_back(0);
  is_refined_.push_back(false);
  dirty_flag_.push_back(false);
  MarkDirty(static_cast<NodeId>(labels_.postorder.size()) - 1);
}

Label DynamicClosure::MaxAssigned() const {
  return by_postorder_.empty() ? 0 : by_postorder_.rbegin()->first;
}

Label DynamicClosure::PreviousAssigned(Label x) const {
  auto it = by_postorder_.lower_bound(x);
  if (it == by_postorder_.begin()) return 0;
  return std::prev(it)->first;
}

StatusOr<NodeId> DynamicClosure::AddLeafUnder(NodeId parent) {
  if (parent != kNoNode && !graph_.IsValidNode(parent)) {
    return InvalidArgumentError("invalid parent " + std::to_string(parent));
  }

  const NodeId node = graph_.AddNode();
  GrowNodeState();

  if (parent == kNoNode) {
    // New root: append past the current maximum.  The gap below the new
    // number is its private insertion room; the interval starts above the
    // previous node's reserve pool.
    const Label max_before = MaxAssigned();
    const Label number = max_before + labels_.gap;
    labels_.postorder[node] = number;
    labels_.tree_interval[node] =
        Interval{max_before + labels_.reserve + 1, number};
    labels_.intervals[node].Insert(labels_.tree_interval[node]);
    by_postorder_[number] = node;
    reserve_remaining_[node] = labels_.reserve;
    return node;
  }

  TREL_CHECK(graph_.AddArc(parent, node).ok());
  tree_parent_[node] = parent;
  tree_children_[parent].push_back(node);

  // Insertion hole: directly below the parent's postorder number, floored
  // by the previous assigned number plus its reserve pool (those slots
  // belong to refinements above that node) and by the parent's interval
  // start.  Any number in this hole is covered by exactly the intervals of
  // nodes that reach the parent (see DESIGN.md), so no propagation is
  // needed.
  const Label n2 = labels_.postorder[parent];
  const Label floor =
      std::max(PreviousAssigned(n2) + labels_.reserve,
               labels_.tree_interval[parent].lo - 1);
  if (n2 - floor < 2) {
    // Hole exhausted: rebuild the numbering, which restores full gaps and
    // labels the new node (it is already in the tree structure).  With
    // gap == 1 every insertion takes this path.
    ++stats_.renumbers;
    if (num_refined_ > 0) {
      Reoptimize();
    } else {
      Renumber();
    }
    return node;
  }
  const Label number = floor + (n2 - floor) / 2;
  TREL_CHECK_GT(number, floor);
  TREL_CHECK_LT(number, n2);
  labels_.postorder[node] = number;
  labels_.tree_interval[node] = Interval{floor + 1, number};
  labels_.intervals[node].Insert(labels_.tree_interval[node]);
  by_postorder_[number] = node;
  // Grant the new leaf as much of a refinement pool as fits strictly
  // inside the hole; siblings inserted later stay above it (their floor
  // protects the full labels_.reserve).
  reserve_remaining_[node] =
      std::max<Label>(0, std::min(labels_.reserve, n2 - number - 1));
  return node;
}

void DynamicClosure::PropagateIntoPredecessors(
    NodeId start, const std::vector<Interval>& delta) {
  std::vector<NodeId> stack = {start};
  std::vector<bool> processed(graph_.NumNodes(), false);
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    if (processed[v]) continue;
    processed[v] = true;
    ++stats_.propagation_node_visits;
    bool changed = false;
    for (const Interval& interval : delta) {
      changed |= labels_.intervals[v].Insert(interval);
    }
    // If every interval was subsumed, predecessors hold supersets already
    // (they inherited v's set when their arcs were processed) and need no
    // visit.
    if (!changed) continue;
    MarkDirty(v);
    for (NodeId p : graph_.InNeighbors(v)) {
      if (!processed[p]) stack.push_back(p);
    }
  }
}

Status DynamicClosure::AddArc(NodeId from, NodeId to) {
  if (!graph_.IsValidNode(from) || !graph_.IsValidNode(to)) {
    return InvalidArgumentError("invalid arc endpoint");
  }
  if (from == to || Reaches(to, from)) {
    return InvalidArgumentError("arc (" + std::to_string(from) + "," +
                                std::to_string(to) +
                                ") would create a cycle");
  }
  TREL_RETURN_IF_ERROR(graph_.AddArc(from, to));

  // Non-tree arc: push `to`'s interval set into `from` and its
  // predecessors.  `to`'s own tree interval travels in padded form so
  // that future refinements below `to` stay constant-time.
  std::vector<Interval> delta;
  delta.reserve(labels_.intervals[to].intervals().size());
  for (const Interval& interval : labels_.intervals[to].intervals()) {
    Interval copy = interval;
    if (interval == labels_.tree_interval[to]) {
      copy.hi += reserve_remaining_[to];
    }
    delta.push_back(copy);
  }
  PropagateIntoPredecessors(from, delta);
  return Status::Ok();
}

StatusOr<NodeId> DynamicClosure::RefineAbove(
    NodeId child, const std::vector<NodeId>& parents_ref) {
  // Callers routinely pass graph().InNeighbors(child), which AddNode()
  // below would invalidate; work on a copy.
  const std::vector<NodeId> parents = parents_ref;
  if (!graph_.IsValidNode(child)) {
    return InvalidArgumentError("invalid child node");
  }
  if (parents.empty()) {
    return InvalidArgumentError("refinement needs at least one parent");
  }
  for (NodeId p : parents) {
    if (!graph_.IsValidNode(p)) {
      return InvalidArgumentError("invalid parent node");
    }
    if (p == child || Reaches(child, p)) {
      return InvalidArgumentError("refinement would create a cycle");
    }
  }
  // Soundness: every existing immediate predecessor of `child` must be a
  // parent of the new node, so "reaches child" implies "reaches z".
  for (NodeId q : graph_.InNeighbors(child)) {
    if (std::find(parents.begin(), parents.end(), q) == parents.end()) {
      return FailedPreconditionError(
          "refinement parents must include every immediate predecessor of "
          "the child (node " +
          std::to_string(q) + " missing)");
    }
  }
  if (reserve_remaining_[child] < 1) {
    return FailedPreconditionError(
        "reserve pool of node " + std::to_string(child) +
        " exhausted; call Renumber() or Reoptimize() first");
  }

  // Record which parents need interval propagation (those not already
  // reaching the child) before mutating the graph.
  std::vector<NodeId> needs_propagation;
  for (NodeId p : parents) {
    if (!Reaches(p, child)) needs_propagation.push_back(p);
  }

  const NodeId z = graph_.AddNode();
  GrowNodeState();
  for (NodeId p : parents) {
    Status s = graph_.AddArc(p, z);
    if (!s.ok() && s.code() != StatusCode::kAlreadyExists) return s;
  }
  TREL_RETURN_IF_ERROR(graph_.AddArc(z, child));

  // Draw the number from the top of the child's reserve pool.  Everyone
  // holding the child's padded interval [lo, postorder + pad] with
  // pad >= remaining claims z — and, by the precondition, really does
  // reach it.
  const Label number = labels_.postorder[child] + reserve_remaining_[child];
  reserve_remaining_[child] -= 1;
  TREL_CHECK(by_postorder_.find(number) == by_postorder_.end());
  labels_.postorder[z] = number;
  labels_.tree_interval[z] =
      Interval{labels_.tree_interval[child].lo, number};
  labels_.intervals[z].Insert(labels_.tree_interval[z]);
  for (const Interval& interval : labels_.intervals[child].intervals()) {
    labels_.intervals[z].Insert(interval);
  }
  by_postorder_[number] = z;
  is_refined_[z] = true;
  ++num_refined_;

  // Parents that already reached the child need no updates (the paper's
  // constant-time case).  Others inherit z's set like a non-tree arc.
  if (!needs_propagation.empty()) {
    std::vector<Interval> delta(labels_.intervals[z].intervals().begin(),
                                labels_.intervals[z].intervals().end());
    for (NodeId p : needs_propagation) {
      PropagateIntoPredecessors(p, delta);
    }
  }
  return z;
}

Status DynamicClosure::RemoveArc(NodeId from, NodeId to) {
  if (!graph_.IsValidNode(from) || !graph_.IsValidNode(to)) {
    return InvalidArgumentError("invalid arc endpoint");
  }
  if (!graph_.HasArc(from, to)) {
    return NotFoundError("arc (" + std::to_string(from) + "," +
                         std::to_string(to) + ") not present");
  }
  TREL_RETURN_IF_ERROR(graph_.RemoveArc(from, to));

  if (num_refined_ > 0) {
    // Refined nodes sit off the tree cover with borrowed numbers; patching
    // around them is not worth the complexity.  Rebuild.
    Reoptimize();
    return Status::Ok();
  }

  if (tree_parent_[to] == from) {
    // Tree-arc deletion (paper 4.2): detach the subtree rooted at `to`,
    // renumber it past the current maximum, make it a child of the
    // virtual root, then recompute interval sets.
    tree_parent_[to] = kNoNode;
    auto& siblings = tree_children_[from];
    siblings.erase(std::find(siblings.begin(), siblings.end(), to));

    // Collect the subtree in DFS order and renumber it in postorder.
    std::vector<NodeId> subtree;
    {
      std::vector<NodeId> stack = {to};
      while (!stack.empty()) {
        const NodeId v = stack.back();
        stack.pop_back();
        subtree.push_back(v);
        for (NodeId c : tree_children_[v]) stack.push_back(c);
      }
    }
    for (NodeId v : subtree) by_postorder_.erase(labels_.postorder[v]);
    Label next = MaxAssigned();
    // Postorder re-assignment within the detached subtree.
    struct Frame {
      NodeId node;
      size_t next_child;
      Label anchor;
    };
    std::vector<Frame> stack = {{to, 0, next}};
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto& kids = tree_children_[frame.node];
      if (frame.next_child < kids.size()) {
        stack.push_back({kids[frame.next_child++], 0, next});
      } else {
        next += labels_.gap;
        labels_.postorder[frame.node] = next;
        labels_.tree_interval[frame.node] =
            Interval{frame.anchor + labels_.reserve + 1, next};
        by_postorder_[next] = frame.node;
        // The fresh position has a full, unclaimed pool above it.
        reserve_remaining_[frame.node] = labels_.reserve;
        stack.pop_back();
      }
    }
  }
  // Both deletion kinds finish by recomputing interval sets from the tree
  // intervals in reverse topological order (the paper recomputes non-tree
  // intervals; tree numbering is preserved).
  RepropagateAll();
  return Status::Ok();
}

void DynamicClosure::RepropagateAll() {
  auto topo = TopologicalOrder(graph_);
  TREL_CHECK(topo.ok()) << "dynamic closure graph must stay acyclic";
  std::vector<NodeId> reverse_topo(topo.value().rbegin(),
                                   topo.value().rend());
  PropagateIntervals(graph_, reverse_topo, labels_, &reserve_remaining_);
  // Interval sets were rewritten from scratch (and the caller may have
  // renumbered a detached subtree first); treat everything as changed.
  MarkAllDirty();
}

void DynamicClosure::Renumber() {
  TREL_CHECK_EQ(num_refined_, 0)
      << "Renumber() with refined nodes present; use Reoptimize()";
  TreeCover cover;
  cover.parent = tree_parent_;
  cover.children = tree_children_;
  for (NodeId v = 0; v < graph_.NumNodes(); ++v) {
    if (tree_parent_[v] == kNoNode) cover.roots.push_back(v);
  }
  auto labels = BuildLabels(graph_, cover, options_.labeling);
  TREL_CHECK(labels.ok()) << labels.status().ToString();
  AdoptCover(cover, std::move(labels).value());
}

void DynamicClosure::Reoptimize() {
  auto rebuilt = Build(graph_, options_);
  TREL_CHECK(rebuilt.ok()) << rebuilt.status().ToString();
  ++stats_.reoptimizes;
  Stats stats = stats_;
  *this = std::move(rebuilt).value();
  stats_ = stats;
}

int64_t DynamicClosure::CountSuccessors(NodeId u) const {
  TREL_CHECK(graph_.IsValidNode(u));
  const Label self = labels_.postorder[u];
  int64_t count = 0;
  bool self_counted = false;
  Label cursor = std::numeric_limits<Label>::min();
  for (const Interval& interval : labels_.intervals[u].intervals()) {
    const Label lo = std::max(interval.lo, cursor);
    if (lo > interval.hi) continue;
    auto first = by_postorder_.lower_bound(lo);
    auto last = by_postorder_.upper_bound(interval.hi);
    count += std::distance(first, last);
    // Clipped ranges are disjoint, so u's number is counted at most once.
    if (lo <= self && self <= interval.hi) self_counted = true;
    if (interval.hi == std::numeric_limits<Label>::max()) break;
    cursor = interval.hi + 1;
  }
  return self_counted ? count - 1 : count;
}

std::vector<NodeId> DynamicClosure::Predecessors(NodeId v) const {
  TREL_CHECK(graph_.IsValidNode(v));
  std::vector<bool> seen(graph_.NumNodes(), false);
  std::vector<NodeId> stack = {v};
  std::vector<NodeId> result;
  seen[v] = true;
  while (!stack.empty()) {
    const NodeId x = stack.back();
    stack.pop_back();
    for (NodeId p : graph_.InNeighbors(x)) {
      if (!seen[p]) {
        seen[p] = true;
        result.push_back(p);
        stack.push_back(p);
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<NodeId> DynamicClosure::Successors(NodeId u) const {
  TREL_CHECK(graph_.IsValidNode(u));
  std::vector<NodeId> result;
  // Skip u's own number during enumeration instead of erasing it after a
  // linear scan (see CompressedClosure::Successors).
  const Label self = labels_.postorder[u];
  Label cursor = std::numeric_limits<Label>::min();
  for (const Interval& interval : labels_.intervals[u].intervals()) {
    const Label lo = std::max(interval.lo, cursor);
    if (lo > interval.hi) continue;
    for (auto it = by_postorder_.lower_bound(lo);
         it != by_postorder_.end() && it->first <= interval.hi; ++it) {
      if (it->first == self) continue;
      result.push_back(it->second);
    }
    if (interval.hi == std::numeric_limits<Label>::max()) break;
    cursor = interval.hi + 1;
  }
  return result;
}

CompressedClosure DynamicClosure::ExportClosure(const ParallelRunner* runner,
                                                bool retain_labels,
                                                int64_t* arena_micros) const {
  TreeCover cover;
  cover.parent = tree_parent_;
  cover.children = tree_children_;
  for (NodeId v = 0; v < graph_.NumNodes(); ++v) {
    if (tree_parent_[v] == kNoNode) cover.roots.push_back(v);
  }
  // by_postorder_ already orders (number, node) ascending, so the export
  // can hand the arena builder a ready-made directory and skip its
  // O(n log n) sort.
  CompressedClosure::ExportHints hints;
  hints.runner = runner;
  hints.arena_micros = arena_micros;
  hints.sorted_directory.reserve(by_postorder_.size());
  for (const auto& [number, node] : by_postorder_) {
    hints.sorted_directory.emplace_back(number, node);
  }
  if (!retain_labels) {
    // Build the arena straight off this index's labels — no per-node
    // IntervalSet deep copy.  The snapshot answers queries but cannot
    // hand back labels() or serve as a WithDelta base for re-export.
    return CompressedClosure::FromPartsQueryOnly(labels_, std::move(cover),
                                                 std::move(hints));
  }
  return CompressedClosure::FromParts(labels_, std::move(cover),
                                      std::move(hints));
}


namespace {

// Snapshot format primitives: little-endian fixed-width integers.
constexpr uint64_t kSnapshotMagic = 0x74726C736E617031ULL;  // "trlsnap1"

void PutU64(std::ostream& out, uint64_t value) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(value >> (8 * i));
  out.write(bytes, 8);
}

void PutI64(std::ostream& out, int64_t value) {
  PutU64(out, static_cast<uint64_t>(value));
}

bool GetU64(std::istream& in, uint64_t& value) {
  char bytes[8];
  if (!in.read(bytes, 8)) return false;
  value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | static_cast<uint8_t>(bytes[i]);
  }
  return true;
}

bool GetI64(std::istream& in, int64_t& value) {
  uint64_t raw;
  if (!GetU64(in, raw)) return false;
  value = static_cast<int64_t>(raw);
  return true;
}

}  // namespace

Status DynamicClosure::Save(std::ostream& out) const {
  const NodeId n = graph_.NumNodes();
  PutU64(out, kSnapshotMagic);
  PutI64(out, n);
  PutI64(out, labels_.gap);
  PutI64(out, labels_.reserve);
  PutI64(out, static_cast<int64_t>(options_.strategy));
  // Arcs.
  PutI64(out, graph_.NumArcs());
  for (const auto& [from, to] : graph_.Arcs()) {
    PutI64(out, from);
    PutI64(out, to);
  }
  // Per-node labels and tree structure.  Children lists are serialized
  // explicitly because their order shapes future renumberings.
  for (NodeId v = 0; v < n; ++v) {
    PutI64(out, labels_.postorder[v]);
    PutI64(out, labels_.tree_interval[v].lo);
    PutI64(out, labels_.tree_interval[v].hi);
    PutI64(out, tree_parent_[v]);
    PutI64(out, reserve_remaining_[v]);
    PutI64(out, is_refined_[v] ? 1 : 0);
    const auto& intervals = labels_.intervals[v].intervals();
    PutI64(out, static_cast<int64_t>(intervals.size()));
    for (const Interval& interval : intervals) {
      PutI64(out, interval.lo);
      PutI64(out, interval.hi);
    }
    PutI64(out, static_cast<int64_t>(tree_children_[v].size()));
    for (NodeId c : tree_children_[v]) PutI64(out, c);
  }
  PutI64(out, stats_.renumbers);
  PutI64(out, stats_.reoptimizes);
  PutI64(out, stats_.propagation_node_visits);
  if (!out.good()) return IoError("snapshot write failed");
  return Status::Ok();
}

StatusOr<DynamicClosure> DynamicClosure::Load(std::istream& in) {
  uint64_t magic;
  if (!GetU64(in, magic) || magic != kSnapshotMagic) {
    return InvalidArgumentError("not a DynamicClosure snapshot");
  }
  int64_t n64, gap, reserve, strategy, num_arcs;
  if (!GetI64(in, n64) || !GetI64(in, gap) || !GetI64(in, reserve) ||
      !GetI64(in, strategy) || !GetI64(in, num_arcs)) {
    return InvalidArgumentError("truncated snapshot header");
  }
  if (n64 < 0 || gap < 1 || reserve < 0 || reserve >= gap || num_arcs < 0) {
    return InvalidArgumentError("corrupt snapshot header");
  }
  const NodeId n = static_cast<NodeId>(n64);

  ClosureOptions options;
  options.strategy = static_cast<TreeCoverStrategy>(strategy);
  options.labeling.gap = gap;
  options.labeling.reserve = reserve;
  DynamicClosure closure(options);
  closure.graph_ = Digraph(n);
  for (int64_t k = 0; k < num_arcs; ++k) {
    int64_t from, to;
    if (!GetI64(in, from) || !GetI64(in, to)) {
      return InvalidArgumentError("truncated arc list");
    }
    TREL_RETURN_IF_ERROR(closure.graph_.AddArc(static_cast<NodeId>(from),
                                               static_cast<NodeId>(to)));
  }

  closure.labels_.gap = gap;
  closure.labels_.reserve = reserve;
  closure.labels_.postorder.assign(n, 0);
  closure.labels_.tree_interval.assign(n, Interval{0, 0});
  closure.labels_.intervals.assign(n, IntervalSet());
  closure.tree_parent_.assign(n, kNoNode);
  closure.tree_children_.assign(n, {});
  closure.reserve_remaining_.assign(n, 0);
  closure.is_refined_.assign(n, false);
  closure.num_refined_ = 0;

  for (NodeId v = 0; v < n; ++v) {
    int64_t postorder, lo, hi, parent, remaining, refined, interval_count;
    if (!GetI64(in, postorder) || !GetI64(in, lo) || !GetI64(in, hi) ||
        !GetI64(in, parent) || !GetI64(in, remaining) ||
        !GetI64(in, refined) || !GetI64(in, interval_count)) {
      return InvalidArgumentError("truncated node record");
    }
    if (interval_count < 0 || interval_count > n64 + 1) {
      return InvalidArgumentError("corrupt interval count");
    }
    closure.labels_.postorder[v] = postorder;
    closure.labels_.tree_interval[v] = Interval{lo, hi};
    closure.tree_parent_[v] = static_cast<NodeId>(parent);
    closure.reserve_remaining_[v] = remaining;
    closure.is_refined_[v] = refined != 0;
    if (refined != 0) ++closure.num_refined_;
    for (int64_t k = 0; k < interval_count; ++k) {
      int64_t ilo, ihi;
      if (!GetI64(in, ilo) || !GetI64(in, ihi) || ilo > ihi) {
        return InvalidArgumentError("corrupt interval record");
      }
      closure.labels_.intervals[v].Insert(Interval{ilo, ihi});
    }
    int64_t child_count;
    if (!GetI64(in, child_count) || child_count < 0 || child_count > n64) {
      return InvalidArgumentError("corrupt child count");
    }
    for (int64_t k = 0; k < child_count; ++k) {
      int64_t child;
      if (!GetI64(in, child) || child < 0 || child >= n64) {
        return InvalidArgumentError("corrupt child record");
      }
      closure.tree_children_[v].push_back(static_cast<NodeId>(child));
    }
    if (closure.by_postorder_.count(postorder) > 0) {
      return InvalidArgumentError("duplicate postorder number");
    }
    closure.by_postorder_[postorder] = v;
  }
  if (!GetI64(in, closure.stats_.renumbers) ||
      !GetI64(in, closure.stats_.reoptimizes) ||
      !GetI64(in, closure.stats_.propagation_node_visits)) {
    return InvalidArgumentError("truncated stats record");
  }
  // A restarted process has no snapshot to be a delta base; everything is
  // dirty until the first full export.
  closure.MarkAllDirty();
  return closure;
}

}  // namespace trel
