#ifndef TREL_CORE_CHAIN_PROPAGATOR_H_
#define TREL_CORE_CHAIN_PROPAGATOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/statusor.h"
#include "core/chain_cover.h"
#include "core/labeling.h"
#include "core/tree_cover.h"
#include "graph/digraph.h"

namespace trel {

// Chain-indexed fast full build of the interval labeling.
//
// The greedy arc-threaded path cover (GreedyPathCover) is itself a valid
// tree cover: every chain is a path in the graph, so "parent = chain
// predecessor" satisfies the tree-cover invariant.  Running the paper's
// AssignPostorder + PropagateIntervals over that cover has a closed form:
// chain c's members occupy one contiguous postorder block, every member's
// intervals start at the block base, and the only per-(node, chain) datum
// is the highest block number reachable — the chain's first-reachable
// frontier.  BuildChainLabeling exploits that: one O(n + m) pass per
// 64-chain block of max-propagations replaces the per-interval antichain
// merges of the generic propagator, and the result is BIT-IDENTICAL to
// BuildLabels(graph, path cover) — same postorder numbers, same tree
// intervals, same per-node interval sets.  The price is label quality:
// the path cover is not Alg1's antichain-optimal cover, so the interval
// count can blow up (bounded by num_chains per node; the entry cap below
// aborts pathological cases).  Publishers therefore treat this as a fast
// rebuild tier and re-tighten with an Alg1 build on a cadence
// (ServiceOptions::chain_reoptimize_cadence).

// What the chain analyzer saw; the offline twin is `trel_tool chains`.
struct ChainSignals {
  NodeId num_nodes = 0;
  int64_t num_arcs = 0;
  // Greedy arc path cover size.  An upper bound on the width (Dilworth:
  // width = minimum chain cover <= any chain cover); the antichain count
  // it is compared against in docs is exactly this bound's target.
  int num_chains = 0;
  // num_chains / num_nodes: the fraction the eligibility test thresholds.
  double chain_fraction = 0.0;
  // True iff the chain-fast build is admissible for this graph under the
  // thresholds below (a mid-build entry-cap abort can still reject it).
  bool eligible = false;
};

// Eligibility thresholds.  Work is ceil(k/64) passes over n + m, and the
// worst-case interval count is k per node, so both an absolute cap and a
// width fraction gate the fast path:
//   * more than kMaxChainFastChains chains -> the blocked propagation
//     itself stops being cheap (random degree-4 DAGs sit in the
//     thousands of chains; chain-structured feeds in the tens).
//   * num_chains > n * kMaxChainWidthFraction -> even if cheap to build,
//     labels could carry O(k) intervals per node on a graph Alg1 keeps
//     near one — too much read-path regression for a write-path win.
//   * kMaxChainEntriesPerNode * n emitted intervals aborts mid-build
//     (ResourceExhausted) as a backstop for adversarial shapes that pass
//     the width gates but still fan every chain into every node.
constexpr int kMaxChainFastChains = 512;
constexpr double kMaxChainWidthFraction = 1.0 / 16.0;
constexpr int64_t kMaxChainEntriesPerNode = 48;

// A complete chain-fast labeling: everything DynamicClosure needs to
// adopt it or CompressedClosure needs to export it.
struct ChainBuild {
  // The path cover as a TreeCover (parent = chain predecessor), valid for
  // AdoptCover / FromParts.
  TreeCover cover;
  // The labeling; bit-identical to BuildLabels(graph, cover, options).
  NodeLabels labels;
  // (postorder, node) ascending — free here (block layout), saves the
  // exporter's O(n log n) sort.
  std::vector<std::pair<Label, NodeId>> sorted_directory;
  ChainSignals signals;
};

// Cheap pre-flight: topological order + greedy path cover + threshold
// check, no label work.  O(n + m).  Fails with FailedPrecondition on
// cyclic graphs.
StatusOr<ChainSignals> AnalyzeChains(const Digraph& graph);

// Runs the full chain-fast build.  Fails with FailedPrecondition on
// cycles, InvalidArgument on bad options (merge_adjacent is unsupported:
// the closed form above holds for raw antichains only), and
// ResourceExhausted when the entry cap trips mid-build — callers then
// fall back to the Alg1 path.  The width thresholds are deliberately NOT
// enforced here: auto-mode selectors consult AnalyzeChains (or the
// returned signals) first, while TREL_PUBLISH=chain forces the build on
// any graph and the entry cap alone backstops it.
StatusOr<ChainBuild> BuildChainLabeling(const Digraph& graph,
                                        const LabelingOptions& options);

}  // namespace trel

#endif  // TREL_CORE_CHAIN_PROPAGATOR_H_
