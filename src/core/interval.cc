#include "core/interval.h"

#include <algorithm>

namespace trel {

std::ostream& operator<<(std::ostream& os, const Interval& interval) {
  return os << "[" << interval.lo << "," << interval.hi << "]";
}

IntervalSet IntervalSet::FromSortedAntichain(std::vector<Interval> intervals) {
  IntervalSet set;
  for (size_t k = 0; k < intervals.size(); ++k) {
    TREL_CHECK_LE(intervals[k].lo, intervals[k].hi);
    if (k > 0) {
      // Antichain sorted by lo: both coordinates strictly increase.
      TREL_CHECK_LT(intervals[k - 1].lo, intervals[k].lo);
      TREL_CHECK_LT(intervals[k - 1].hi, intervals[k].hi);
    }
  }
  set.intervals_ = std::move(intervals);
  return set;
}

bool IntervalSet::Insert(Interval interval) {
  TREL_CHECK_LE(interval.lo, interval.hi);
  // Position of the first member with lo > interval.lo.
  auto upper = std::upper_bound(
      intervals_.begin(), intervals_.end(), interval,
      [](const Interval& a, const Interval& b) { return a.lo < b.lo; });

  // The member that could subsume `interval` is the one with the largest
  // lo <= interval.lo (in an antichain hi increases with lo, so it has the
  // largest hi among members that start at or before interval.lo).
  if (upper != intervals_.begin()) {
    const Interval& candidate = *(upper - 1);
    if (candidate.Subsumes(interval)) return false;
  }

  // Members subsumed by `interval` start at `upper`'s predecessor region:
  // they have lo >= interval.lo, so they form a contiguous run starting at
  // the first member with lo >= interval.lo and ending before the first
  // member with hi > interval.hi.
  auto first = std::lower_bound(
      intervals_.begin(), intervals_.end(), interval,
      [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  auto last = first;
  while (last != intervals_.end() && last->hi <= interval.hi) ++last;
  auto insert_pos = intervals_.erase(first, last);
  intervals_.insert(insert_pos, interval);
  return true;
}

bool IntervalSet::Contains(Label x) const {
  // The only candidate is the member with the largest lo <= x.
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), x,
      [](Label value, const Interval& i) { return value < i.lo; });
  if (it == intervals_.begin()) return false;
  return (it - 1)->hi >= x;
}

bool IntervalSet::CoveredBy(const Interval& interval) const {
  for (const Interval& member : intervals_) {
    if (!interval.Subsumes(member)) return false;
  }
  return true;
}

bool IntervalSet::SubsumesInterval(const Interval& interval) const {
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), interval.lo,
      [](Label value, const Interval& i) { return value < i.lo; });
  if (it == intervals_.begin()) return false;
  return (it - 1)->Subsumes(interval);
}

int IntervalSet::MergeAdjacent() {
  if (intervals_.size() < 2) return 0;
  // In-place compaction: intervals_[0..out] is the merged prefix.
  int merges = 0;
  size_t out = 0;
  for (size_t k = 1; k < intervals_.size(); ++k) {
    Interval& last = intervals_[out];
    // Written as lo - 1 <= hi rather than lo <= hi + 1: members sort by
    // strictly increasing lo, so lo - 1 cannot underflow for k >= 1, while
    // hi + 1 would overflow when a member ends at the Label maximum.
    if (intervals_[k].lo - 1 <= last.hi) {
      last.hi = std::max(last.hi, intervals_[k].hi);
      ++merges;
    } else {
      intervals_[++out] = intervals_[k];
    }
  }
  intervals_.resize(out + 1);
  return merges;
}

std::ostream& operator<<(std::ostream& os, const IntervalSet& set) {
  os << "{";
  for (size_t k = 0; k < set.intervals().size(); ++k) {
    if (k > 0) os << " ";
    os << set.intervals()[k];
  }
  return os << "}";
}

}  // namespace trel
