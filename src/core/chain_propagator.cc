#include "core/chain_propagator.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.h"
#include "graph/topology.h"

namespace trel {
namespace {

// Chains propagate in blocks of this many frontiers per graph pass; one
// cache-resident row of 64 Labels per node keeps the inner max-merge
// loop vectorizable.
constexpr int kChainBlock = 64;

ChainSignals SignalsFor(const Digraph& graph, const ChainAssignment& chains) {
  ChainSignals signals;
  signals.num_nodes = graph.NumNodes();
  signals.num_arcs = graph.NumArcs();
  signals.num_chains = chains.num_chains;
  signals.chain_fraction =
      signals.num_nodes > 0
          ? static_cast<double>(chains.num_chains) / signals.num_nodes
          : 0.0;
  // The max(1, ...) keeps trivially chain-shaped small graphs (one or two
  // paths) eligible even below 16 nodes.
  signals.eligible =
      chains.num_chains <= kMaxChainFastChains &&
      static_cast<double>(chains.num_chains) <=
          std::max(1.0, signals.num_nodes * kMaxChainWidthFraction);
  return signals;
}

}  // namespace

StatusOr<ChainSignals> AnalyzeChains(const Digraph& graph) {
  TREL_ASSIGN_OR_RETURN(std::vector<NodeId> topo, TopologicalOrder(graph));
  return SignalsFor(graph, GreedyPathCover(graph, topo));
}

StatusOr<ChainBuild> BuildChainLabeling(const Digraph& graph,
                                        const LabelingOptions& options) {
  if (options.gap < 1) {
    return InvalidArgumentError("gap must be >= 1");
  }
  if (options.reserve < 0 || options.reserve >= options.gap) {
    return InvalidArgumentError("reserve must be in [0, gap)");
  }
  if (options.merge_adjacent) {
    return InvalidArgumentError(
        "chain-fast labeling does not support merge_adjacent");
  }
  TREL_ASSIGN_OR_RETURN(std::vector<NodeId> topo, TopologicalOrder(graph));
  const NodeId n = graph.NumNodes();
  const Label gap = options.gap;
  const Label reserve = options.reserve;

  ChainBuild build;
  ChainAssignment chains = GreedyPathCover(graph, topo);
  build.signals = SignalsFor(graph, chains);
  const int num_chains = chains.num_chains;

  // Chain geometry: lengths, postorder block bases, member slots.  Chain
  // c's members own the numbers (base[c], base[c] + len[c] * gap] with
  // the tail lowest — exactly what AssignPostorder hands a path rooted at
  // the head, since postorder numbers the deepest node first.
  std::vector<int64_t> chain_len(num_chains, 0);
  for (NodeId v = 0; v < n; ++v) ++chain_len[chains.chain_of[v]];
  std::vector<Label> base(num_chains + 1, 0);
  std::vector<int64_t> offset(num_chains + 1, 0);
  for (int c = 0; c < num_chains; ++c) {
    base[c + 1] = base[c] + chain_len[c] * gap;
    offset[c + 1] = offset[c] + chain_len[c];
  }
  std::vector<NodeId> member(n, kNoNode);
  for (NodeId v = 0; v < n; ++v) {
    member[offset[chains.chain_of[v]] + chains.seq_of[v]] = v;
  }

  NodeLabels& labels = build.labels;
  labels.gap = gap;
  labels.reserve = reserve;
  labels.postorder.assign(n, 0);
  labels.tree_interval.assign(n, Interval{0, 0});
  for (NodeId v = 0; v < n; ++v) {
    const int c = chains.chain_of[v];
    const Label num = base[c] + (chain_len[c] - chains.seq_of[v]) * gap;
    labels.postorder[v] = num;
    // All members of a path share the head's anchor: nothing is numbered
    // between entering the head and reaching the tail.
    labels.tree_interval[v] = Interval{base[c] + reserve + 1, num};
  }

  // The path cover as a TreeCover; chains are already ordered by
  // ascending head id (GreedyPathCover), so roots come out ascending.
  TreeCover& cover = build.cover;
  cover.parent.assign(n, kNoNode);
  cover.children.assign(n, {});
  cover.roots.reserve(num_chains);
  for (int c = 0; c < num_chains; ++c) {
    cover.roots.push_back(member[offset[c]]);
    for (int64_t i = 1; i < chain_len[c]; ++i) {
      const NodeId v = member[offset[c] + i];
      const NodeId p = member[offset[c] + i - 1];
      cover.parent[v] = p;
      cover.children[p].push_back(v);
    }
  }

  // Ascending postorder is tail-to-head within a chain, chains in order.
  build.sorted_directory.reserve(n);
  for (int c = 0; c < num_chains; ++c) {
    for (int64_t i = chain_len[c] - 1; i >= 0; --i) {
      const NodeId v = member[offset[c] + i];
      build.sorted_directory.emplace_back(labels.postorder[v], v);
    }
  }

  // Blocked frontier propagation.  frontier[v * width + j] is the highest
  // value chain (c0 + j) contributes to v's label: its own padded
  // postorder if v is the member, else the max over out-neighbors — the
  // closed form of what PropagateIntervals' subsumption leaves standing.
  // Emitting per node in block-ascending chain order yields each interval
  // list already sorted by lo (blocks never overlap), so the sets load
  // through FromSortedAntichain without per-interval Insert work.
  std::vector<std::vector<Interval>> emitted(n);
  const int64_t entry_cap = kMaxChainEntriesPerNode * std::max<int64_t>(1, n);
  int64_t entries = 0;
  std::vector<Label> frontier;
  for (int c0 = 0; c0 < num_chains; c0 += kChainBlock) {
    const int width = std::min(kChainBlock, num_chains - c0);
    frontier.assign(static_cast<size_t>(n) * width, 0);
    for (NodeId idx = n; idx-- > 0;) {
      const NodeId v = topo[idx];
      Label* row = frontier.data() + static_cast<size_t>(v) * width;
      for (const NodeId q : graph.OutNeighbors(v)) {
        const Label* succ = frontier.data() + static_cast<size_t>(q) * width;
        for (int j = 0; j < width; ++j) row[j] = std::max(row[j], succ[j]);
      }
      const int own = chains.chain_of[v] - c0;
      std::vector<Interval>& out = emitted[v];
      for (int j = 0; j < width; ++j) {
        if (j == own) {
          // Own chain keeps only the (unpadded) tree interval: anything
          // propagated up the chain sits at least one gap below v's own
          // number and is subsumed.
          out.push_back(labels.tree_interval[v]);
        } else if (row[j] > 0) {
          out.push_back(Interval{base[c0 + j] + reserve + 1, row[j]});
        } else {
          continue;
        }
        ++entries;
      }
      if (own >= 0 && own < width) {
        // What predecessors receive: the tree interval padded with the
        // refinement reserve, matching PropagateIntervals.
        row[own] = labels.postorder[v] + reserve;
      }
      if (entries > entry_cap) {
        return ResourceExhaustedError(
            "chain-fast labeling exceeded the per-node entry cap");
      }
    }
  }

  labels.intervals.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    labels.intervals[v] = IntervalSet::FromSortedAntichain(std::move(emitted[v]));
  }
  return build;
}

}  // namespace trel
