#include "core/lattice_ops.h"
#include <iterator>

#include <algorithm>

#include "common/check.h"

namespace trel {
namespace {

// Intersection of two sorted id vectors.
std::vector<NodeId> Intersect(const std::vector<NodeId>& a,
                              const std::vector<NodeId>& b) {
  std::vector<NodeId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace

std::vector<NodeId> LatticeOps::AncestorsOf(NodeId v) const {
  std::vector<NodeId> result = closure_->Predecessors(v);
  result.push_back(v);
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<NodeId> LatticeOps::DescendantsOf(NodeId v) const {
  std::vector<NodeId> result = closure_->Successors(v);
  result.push_back(v);
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<NodeId> LatticeOps::LeastCommonAncestors(NodeId u, NodeId v) const {
  const std::vector<NodeId> common =
      Intersect(AncestorsOf(u), AncestorsOf(v));
  // Keep c iff no other common ancestor lies strictly below it (i.e., c
  // reaches no other member of `common`).
  std::vector<NodeId> minimal;
  for (NodeId c : common) {
    bool is_minimal = true;
    for (NodeId d : common) {
      if (c != d && closure_->Reaches(c, d)) {
        is_minimal = false;
        break;
      }
    }
    if (is_minimal) minimal.push_back(c);
  }
  return minimal;
}

std::vector<NodeId> LatticeOps::GreatestCommonDescendants(NodeId u,
                                                          NodeId v) const {
  const std::vector<NodeId> common =
      Intersect(DescendantsOf(u), DescendantsOf(v));
  // Keep c iff no other common descendant lies strictly above it.
  std::vector<NodeId> maximal;
  for (NodeId c : common) {
    bool is_maximal = true;
    for (NodeId d : common) {
      if (c != d && closure_->Reaches(d, c)) {
        is_maximal = false;
        break;
      }
    }
    if (is_maximal) maximal.push_back(c);
  }
  return maximal;
}

bool LatticeOps::AreDisjoint(NodeId u, NodeId v) const {
  // Cheap pre-check: comparable nodes share the lower one.
  if (Comparable(u, v)) return false;
  return Intersect(DescendantsOf(u), DescendantsOf(v)).empty();
}

bool LatticeOps::Comparable(NodeId u, NodeId v) const {
  return closure_->Reaches(u, v) || closure_->Reaches(v, u);
}

}  // namespace trel
