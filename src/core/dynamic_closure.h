#ifndef TREL_CORE_DYNAMIC_CLOSURE_H_
#define TREL_CORE_DYNAMIC_CLOSURE_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <vector>

#include "common/statusor.h"
#include "core/compressed_closure.h"
#include "core/interval.h"
#include "core/labeling.h"
#include "graph/digraph.h"

namespace trel {

// Mutable compressed transitive closure implementing the paper's Section 4
// incremental update algorithms.  The key enabler is gap numbering:
// postorder numbers are spaced `gap` apart so new nodes slot into holes
// without disturbing existing labels.
//
// Update cost model (n = nodes, k = intervals):
//   AddLeafUnder      O(log n)    (constant label work; no propagation —
//                                  ancestors' intervals already cover the
//                                  hole the new number is drawn from)
//   AddArc            O(affected predecessors * interval work); stops as
//                     soon as subsumption absorbs the new intervals
//   RefineAbove       O(parents) when all parents already reach the child
//                     (the paper's constant-time hierarchy refinement)
//   RemoveArc         renumbers the detached subtree (tree arc) and
//                     re-propagates interval sets; keeps the tree cover
//   Renumber          O(n + propagation); invoked automatically when a
//                     gap is exhausted
//   Reoptimize        full rebuild with a fresh optimal tree cover (the
//                     paper: "it may be prudent to develop a new
//                     tree-cover after sufficient update activity")
//
// Incremental updates do not preserve the optimality of the tree cover
// (paper, end of Section 4); call Reoptimize() to restore it.
class DynamicClosure {
 public:
  struct Stats {
    int64_t renumbers = 0;      // automatic Renumber() invocations
    int64_t reoptimizes = 0;    // full rebuilds (explicit or forced)
    int64_t chain_rebuilds = 0;  // chain-fast rebuilds (RebuildWithChains)
    int64_t propagation_node_visits = 0;  // nodes touched by AddArc floods
  };

  // Sensible defaults for dynamic use: room for 63 in-place leaf splits
  // per hole and 15 refinements per node between renumberings.
  static ClosureOptions DefaultOptions();

  // Empty closure; nodes are introduced via AddLeafUnder.
  explicit DynamicClosure(const ClosureOptions& options = DefaultOptions());

  // Wraps an existing DAG.  Fails if `graph` is cyclic.
  static StatusOr<DynamicClosure> Build(
      const Digraph& graph, const ClosureOptions& options = DefaultOptions());

  // Like Build, but labels via the chain-fast path (chain_propagator.h):
  // greedy path cover + blocked frontier propagation instead of Alg1's
  // antichain-optimal cover + per-interval merges.  Much cheaper on
  // chain-structured graphs; label quality (interval count) can be worse.
  // Fails like BuildChainLabeling does (incl. ResourceExhausted on the
  // entry cap) — callers fall back to Build.  options.strategy is ignored
  // (the cover IS the path cover).
  static StatusOr<DynamicClosure> BuildWithChains(
      const Digraph& graph, const ClosureOptions& options = DefaultOptions());

  // In-place chain-fast rebuild of the current graph: the fast analogue
  // of Reoptimize().  On failure the index is left untouched and the
  // error returned (callers then Reoptimize instead).
  Status RebuildWithChains();

  // True iff the current labeling came from a chain-fast build (and no
  // Alg1 rebuild has replaced it since).  Publishers use this as the
  // provenance tag for exported snapshots.  Conservatively false after
  // Load(): the snapshot format does not record cover provenance.
  bool UsesChainCover() const { return cover_is_chain_; }

  // --- Updates (paper Section 4) -----------------------------------------

  // "Addition of a tree arc": creates a new node with tree parent
  // `parent`, or a new root if parent == kNoNode.  Never fails for valid
  // parents; renumbers automatically when the hole below `parent` is full.
  StatusOr<NodeId> AddLeafUnder(NodeId parent);

  // "Addition of a non-tree arc" between existing nodes.  Propagates the
  // target's intervals to the source and its predecessors, pruned by
  // subsumption.  Fails if the arc would create a cycle, is a duplicate,
  // or has invalid endpoints.
  Status AddArc(NodeId from, NodeId to);

  // Section 4.1 hierarchy refinement: inserts a new node z with arcs
  // (p, z) for each p in `parents` and (z, child), drawing z's postorder
  // number from child's reserved slack so that predecessors of child need
  // no interval updates.  Soundness requires `parents` to include every
  // current immediate predecessor of `child` (otherwise some node would
  // claim to reach z without a path); fails with FailedPrecondition if
  // violated, if child's reserve pool is exhausted, or on cycles.
  // Runs in O(|parents|) when every parent already reaches child.
  StatusOr<NodeId> RefineAbove(NodeId child,
                               const std::vector<NodeId>& parents);

  // Section 4.2 deletions.  Tree-arc removal detaches the subtree (it is
  // renumbered past the current maximum and re-rooted, per the paper);
  // non-tree removal recomputes non-tree intervals in reverse topological
  // order.  Falls back to Reoptimize() when refined nodes are present.
  Status RemoveArc(NodeId from, NodeId to);

  // --- Persistence ---------------------------------------------------------

  // Serializes the complete index state (graph, tree cover, labels,
  // reserve pools, stats) to a binary stream, so a process can restart
  // without rebuilding.  Format is versioned and host-endian-independent.
  Status Save(std::ostream& out) const;
  static StatusOr<DynamicClosure> Load(std::istream& in);

  // Rebuilds numbering and intervals for the *current* tree cover,
  // restoring full gaps and reserve pools.
  void Renumber();

  // Full rebuild: fresh optimal tree cover, numbering, and intervals.
  void Reoptimize();

  // --- Queries ------------------------------------------------------------

  bool Reaches(NodeId u, NodeId v) const {
    TREL_CHECK(graph_.IsValidNode(u));
    TREL_CHECK(graph_.IsValidNode(v));
    if (u == v) return true;
    return labels_.intervals[u].Contains(labels_.postorder[v]);
  }

  // Reachable nodes excluding `u`, ascending postorder order.
  std::vector<NodeId> Successors(NodeId u) const;

  // Number of nodes reachable from `u` (excluding `u`), without
  // materializing them.
  int64_t CountSuccessors(NodeId u) const;

  // Nodes that reach `v`, excluding `v` (upward BFS over the arcs; the
  // structure is optimized for forward queries — see BidirectionalClosure
  // for an indexed alternative on static graphs).
  std::vector<NodeId> Predecessors(NodeId v) const;

  // Copies the current labeling into an immutable CompressedClosure that
  // answers exactly like this index does right now.  Costs one copy of
  // the labels plus an O(n) arena build — no postorder sort (the index's
  // by-postorder map is handed over pre-sorted), no tree-cover or
  // propagation work — so a query service can publish read-only snapshots
  // frequently (see src/service/).  A non-null `runner` shards the arena
  // build across the caller's worker pool.  Passing `retain_labels =
  // false` skips the per-node IntervalSet copy entirely (the arena is
  // built by reading this index's labels in place): the snapshot answers
  // every query and can base WithDelta overlays, but labels() and
  // IntervalsOf are unavailable — see
  // CompressedClosure::FromPartsQueryOnly.  Does not touch the dirty set;
  // a publisher that treats this export as its new delta base must call
  // MarkClean() alongside it.  A non-null `arena_micros` receives the
  // arena-build portion of the export time (obs publish spans).
  CompressedClosure ExportClosure(const ParallelRunner* runner = nullptr,
                                  bool retain_labels = true,
                                  int64_t* arena_micros = nullptr) const;

  // --- Delta export (dirty tracking) --------------------------------------
  //
  // The index tracks which nodes' exported state (postorder number, tree
  // interval, or interval set) changed since the dirty set was last
  // cleared.  The set is a sound overapproximation: a node whose labels
  // changed is always in it; maintenance that rewrites labels wholesale
  // (Renumber, Reoptimize, deletions' re-propagation) marks every node.

  // Number of nodes currently dirty.  Publishers compare this against
  // NumNodes() to decide between ExportDelta and a full ExportClosure.
  int64_t DirtyCount() const {
    return static_cast<int64_t>(dirty_list_.size());
  }

  // Drains the dirty set into per-node label entries, sorted by node id,
  // suitable for CompressedClosure::WithDelta against any snapshot
  // exported at the time the dirty set was last cleared.  O(d log d + d·k)
  // for d dirty nodes with k intervals each.  Clears the dirty set: the
  // caller owns making the resulting snapshot the new baseline.
  ClosureDelta ExportDelta();

  // Declares the current state fully exported (empties the dirty set).
  // Call after a full ExportClosure() that becomes the new delta base.
  void MarkClean();

  // True iff (from, to) is an arc of the current tree cover.
  bool IsTreeArc(NodeId from, NodeId to) const {
    TREL_CHECK(graph_.IsValidNode(from));
    TREL_CHECK(graph_.IsValidNode(to));
    return tree_parent_[to] == from;
  }

  NodeId NumNodes() const { return graph_.NumNodes(); }
  const Digraph& graph() const { return graph_; }
  const NodeLabels& labels() const { return labels_; }
  int64_t TotalIntervals() const { return labels_.TotalIntervals(); }
  int64_t StorageUnits() const { return labels_.StorageUnits(); }
  NodeId TreeParent(NodeId v) const {
    TREL_CHECK(graph_.IsValidNode(v));
    return tree_parent_[v];
  }
  const Stats& stats() const { return stats_; }

 private:
  // Creates label slots for a freshly added graph node and marks it dirty.
  void GrowNodeState();
  // Dirty-set maintenance (see ExportDelta).
  void MarkDirty(NodeId v);
  void MarkAllDirty();
  // Largest assigned postorder number (0 when empty).
  Label MaxAssigned() const;
  // Assigned number strictly below `x`, or 0.
  Label PreviousAssigned(Label x) const;
  // Flood `delta` into `start` and transitively into predecessors,
  // stopping where subsumption makes it a no-op.
  void PropagateIntoPredecessors(NodeId start,
                                 const std::vector<Interval>& delta);
  // Rebuild intervals for the whole graph with current numbering.
  void RepropagateAll();
  // Shared post-rebuild bookkeeping.
  void AdoptCover(const TreeCover& cover, NodeLabels labels);

  ClosureOptions options_;
  Digraph graph_;
  NodeLabels labels_;
  std::vector<NodeId> tree_parent_;
  std::vector<std::vector<NodeId>> tree_children_;
  // Unused refinement slots above each node's postorder number; consumed
  // top-down so propagated pads shrink monotonically (soundness).
  std::vector<Label> reserve_remaining_;
  std::vector<bool> is_refined_;
  int64_t num_refined_ = 0;
  // Assigned postorder number -> node.
  std::map<Label, NodeId> by_postorder_;
  // Dirty set for ExportDelta: dirty_flag_[v] iff v is in dirty_list_
  // (the flag dedups, the list keeps draining O(dirty) not O(n)).
  std::vector<bool> dirty_flag_;
  std::vector<NodeId> dirty_list_;
  // Labeling provenance: set by BuildWithChains/RebuildWithChains,
  // cleared by any Alg1 rebuild (Reoptimize constructs a fresh index and
  // move-assigns it over *this, carrying its default false).  Renumber
  // keeps the cover — and therefore the flag.
  bool cover_is_chain_ = false;
  Stats stats_;
};

}  // namespace trel

#endif  // TREL_CORE_DYNAMIC_CLOSURE_H_
