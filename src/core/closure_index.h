#ifndef TREL_CORE_CLOSURE_INDEX_H_
#define TREL_CORE_CLOSURE_INDEX_H_

#include <vector>

#include "common/statusor.h"
#include "core/compressed_closure.h"
#include "graph/digraph.h"
#include "graph/scc.h"

namespace trel {

// Reachability index for arbitrary digraphs, cyclic or not: strongly
// connected components are collapsed to single nodes ("the techniques
// ... can also be extended to cyclic graphs by collapsing strongly
// connected components into one node", Section 3) and the compressed
// closure is built on the condensation DAG.
class TransitiveClosureIndex {
 public:
  static StatusOr<TransitiveClosureIndex> Build(
      const Digraph& graph, const ClosureOptions& options = {});

  // True iff u reaches v in the original (possibly cyclic) graph.
  bool Reaches(NodeId u, NodeId v) const;

  // All nodes reachable from `u`, excluding `u` itself, ascending ids.
  std::vector<NodeId> Successors(NodeId u) const;

  NodeId NumNodes() const {
    return static_cast<NodeId>(condensation_.component_of.size());
  }
  NodeId NumComponents() const { return condensation_.NumComponents(); }

  const Condensation& condensation() const { return condensation_; }
  const CompressedClosure& component_closure() const { return closure_; }

 private:
  TransitiveClosureIndex(Condensation condensation, CompressedClosure closure)
      : condensation_(std::move(condensation)), closure_(std::move(closure)) {}

  Condensation condensation_;
  CompressedClosure closure_;
};

}  // namespace trel

#endif  // TREL_CORE_CLOSURE_INDEX_H_
