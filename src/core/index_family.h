#ifndef TREL_CORE_INDEX_FAMILY_H_
#define TREL_CORE_INDEX_FAMILY_H_

#include <cstdint>

#include "graph/digraph.h"

namespace trel {

// The reachability-index families a snapshot can be served from.  The
// paper's interval antichains (kIntervals) are the default and the only
// family that supports every query shape (successor enumeration,
// predecessors, WithDelta overlays); the other two exist because the
// intervals degrade on dense, non-tree-like DAGs — the paper's own
// Fig 3.6/3.7 bipartite constructions blow the interval count up to
// Theta(n^2):
//   kTrees — k independent random tree labelings with a label-pruned DFS
//            fallback (GRAIL-style; see tree_cover_index.h).  Wins when
//            the closure is dense but the graph is sparse.
//   kHop   — 2-hop hub labels over the high-degree spine plus an interval
//            index on the hub-free residual (see hop_label_index.h).
//            Wins when a few hub nodes carry most paths.
enum class IndexFamily : uint8_t {
  kIntervals = 0,
  kTrees = 1,
  kHop = 2,
};
constexpr int kNumIndexFamilies = 3;

// "intervals" / "trees" / "hop".
const char* IndexFamilyName(IndexFamily family);

// How a publisher picks the family for a full export: let the selector
// score the graph, or force one family (the TREL_INDEX env values
// "auto" / "intervals" / "trees" / "hop").
enum class IndexFamilySetting : uint8_t {
  kAuto = 0,
  kForceIntervals = 1,
  kForceTrees = 2,
  kForceHop = 3,
};

// Parses a TREL_INDEX-style value; nullptr/empty/unknown mean kAuto (the
// service must never fail to start over an env typo — the choice is
// observable on /statusz).
IndexFamilySetting ParseIndexFamilySetting(const char* value);
// Reads TREL_INDEX from the environment.
IndexFamilySetting IndexFamilySettingFromEnv();

// What the selector looked at, recorded for introspection (trel_tool
// index, tests).
struct FamilySignals {
  NodeId num_nodes = 0;
  int64_t num_arcs = 0;
  int64_t total_intervals = 0;
  // total_intervals / num_nodes: the interval labeling's blowup over the
  // one-interval-per-node ideal.  The paper's tree-like structures sit
  // near 1; the Fig 3.6 shapes reach Theta(n).
  double interval_blowup = 0.0;
  // num_arcs / num_nodes.  High density is the signature of the
  // bipartite-crossing shapes whose interval labels cannot compress
  // (every arc crossing fragments some source's label); deep sparse DAGs
  // grow intervals too, but organically, and keep O(1) probes worth it.
  double arc_density = 0.0;
  // Fraction of arcs incident to the top-kHubProbe nodes by total degree.
  // Near 1 means a few hubs carry the graph — the 2-hop regime.
  double hub_arc_fraction = 0.0;
};

// Selector thresholds, shared with tests and trel_tool so the decision
// is reproducible outside the service.  Decision order:
//   * blowup <= kMaxIntervalBlowup -> intervals (the common case: the
//     paper's structures stay near one interval per node).
//   * hub fraction >= kMinHubArcFraction -> hop labels (a handful of
//     high-degree nodes carries the blowup; label them instead).
//   * density >= kDenseArcsPerNode -> tree covers (bipartite-style
//     crossings: intervals pay Theta(n^2), tree labels stay linear and
//     the shallow fallback DFS is cheap).
//   * otherwise -> intervals.  A deep sparse DAG (e.g. the standard
//     50k-node degree-4 random DAG) grows intervals into the tens per
//     node, but queries stay two array loads; a pruned DFS there would
//     wander long chains, so the arena remains the right trade.
constexpr double kMaxIntervalBlowup = 4.0;
constexpr double kMinHubArcFraction = 0.5;
constexpr double kDenseArcsPerNode = 8.0;
constexpr int kHubProbe = 16;

// Scores `graph` (with the interval labeling's total interval count, as
// the would-be intervals export measures it) and picks a family.
// Deterministic; fills `signals` when non-null.
IndexFamily SelectIndexFamily(const Digraph& graph, int64_t total_intervals,
                              FamilySignals* signals = nullptr);

// Applies a forced setting, falling through to the selector on kAuto.
IndexFamily ResolveIndexFamily(IndexFamilySetting setting,
                               const Digraph& graph, int64_t total_intervals,
                               FamilySignals* signals = nullptr);

}  // namespace trel

#endif  // TREL_CORE_INDEX_FAMILY_H_
