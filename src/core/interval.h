#ifndef TREL_CORE_INTERVAL_H_
#define TREL_CORE_INTERVAL_H_

#include <cstdint>
#include <ostream>
#include <vector>

#include "common/check.h"

namespace trel {

// Postorder numbers are 64-bit so that gap-based incremental numbering
// (Section 4 of the paper) has room to subdivide.
using Label = int64_t;

// Closed numeric interval [lo, hi] of postorder numbers.
struct Interval {
  Label lo;
  Label hi;

  bool Contains(Label x) const { return lo <= x && x <= hi; }

  // True iff this interval subsumes `other` (paper Section 3.2: the
  // subsumed interval can be discarded).
  bool Subsumes(const Interval& other) const {
    return lo <= other.lo && other.hi <= hi;
  }

  bool operator==(const Interval& other) const {
    return lo == other.lo && hi == other.hi;
  }
};

std::ostream& operator<<(std::ostream& os, const Interval& interval);

// Set of intervals attached to one node, maintained as a subsumption-free
// antichain sorted by lo (equivalently by hi: in an antichain both
// coordinates increase together).  Insertion discards subsumed intervals
// in both directions, implementing the paper's compression rule.
class IntervalSet {
 public:
  IntervalSet() = default;

  // Adopts `intervals` wholesale in O(1) moves plus one validation pass.
  // The input must already be what Insert would have produced: sorted
  // ascending by lo with no subsumption (an antichain).  Bulk emitters
  // (chain_propagator.cc) use this to skip per-interval Insert costs.
  static IntervalSet FromSortedAntichain(std::vector<Interval> intervals);

  // Inserts `interval` unless an existing member subsumes it.  Removes any
  // members the new interval subsumes.  Returns true iff the set changed.
  bool Insert(Interval interval);

  // True iff some member contains `x`.  O(log size).
  bool Contains(Label x) const;

  // True iff some member subsumes `interval`.
  bool CoveredBy(const Interval& interval) const;
  bool SubsumesInterval(const Interval& interval) const;

  // Coalesces members that touch numerically (next.lo <= cur.hi + 1),
  // the Section 3.2 "adjacent interval merging" improvement.  After
  // merging the set is still sorted and subsumption-free.  Returns the
  // number of merges performed.
  int MergeAdjacent();

  int64_t size() const { return static_cast<int64_t>(intervals_.size()); }
  bool empty() const { return intervals_.empty(); }
  void clear() { intervals_.clear(); }

  // Members in ascending order.
  const std::vector<Interval>& intervals() const { return intervals_; }

  bool operator==(const IntervalSet& other) const {
    return intervals_ == other.intervals_;
  }

 private:
  std::vector<Interval> intervals_;
};

std::ostream& operator<<(std::ostream& os, const IntervalSet& set);

}  // namespace trel

#endif  // TREL_CORE_INTERVAL_H_
