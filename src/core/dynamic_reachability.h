#ifndef TREL_CORE_DYNAMIC_REACHABILITY_H_
#define TREL_CORE_DYNAMIC_REACHABILITY_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "core/dynamic_closure.h"
#include "graph/digraph.h"
#include "graph/scc.h"

namespace trel {

// Incremental reachability over an *arbitrary* digraph: cycles are
// allowed and may appear or disappear as arcs change.  Combines the two
// mechanisms the paper describes — SCC condensation for cycles and the
// Section 4 incremental labeling for acyclic change — with a pragmatic
// split:
//   - arcs that keep the condensation acyclic flow through
//     DynamicClosure's incremental updates (cheap);
//   - arcs that merge components (create cycles), and arc removals that
//     might split them, trigger recondensation and an index rebuild
//     (correct, costs one Reoptimize; counted in stats).
// This matches how such indexes are operated in practice: cycle-creating
// updates are rare in IS-A/dependency workloads, and the paper's own
// recommendation after heavy churn is a rebuild anyway.
class DynamicReachability {
 public:
  struct Stats {
    int64_t incremental_arcs = 0;
    int64_t rebuilds = 0;
  };

  explicit DynamicReachability(
      const ClosureOptions& options = DynamicClosure::DefaultOptions());

  // Wraps an existing digraph (cyclic permitted).
  static StatusOr<DynamicReachability> Build(
      const Digraph& graph,
      const ClosureOptions& options = DynamicClosure::DefaultOptions());

  // Adds an isolated node; returns its id.
  NodeId AddNode();

  // Adds an arc; unlike DynamicClosure::AddArc this accepts
  // cycle-creating arcs (they merge reachability classes).  Fails only on
  // invalid endpoints / duplicates / self-loops already present.
  Status AddArc(NodeId from, NodeId to);

  // Removes an arc; may split a reachability class.
  Status RemoveArc(NodeId from, NodeId to);

  // True iff u reaches v (reflexive).
  bool Reaches(NodeId u, NodeId v) const;

  // Nodes reachable from u, excluding u itself, ascending.
  std::vector<NodeId> Successors(NodeId u) const;

  NodeId NumNodes() const { return graph_.NumNodes(); }
  NodeId NumComponents() const { return index_.NumNodes(); }
  const Digraph& graph() const { return graph_; }
  const Stats& stats() const { return stats_; }

 private:
  // Recomputes the condensation and rebuilds the component index.
  void Rebuild();

  ClosureOptions options_;
  Digraph graph_;                     // The user's (possibly cyclic) graph.
  std::vector<NodeId> component_of_;  // node -> component index node.
  std::vector<std::vector<NodeId>> members_;  // component -> nodes.
  DynamicClosure index_;              // Over the condensation DAG.
  Stats stats_;
};

}  // namespace trel

#endif  // TREL_CORE_DYNAMIC_REACHABILITY_H_
