// SSE4.2 arena kernels.  This TU (and only this TU) is compiled with
// -msse4.2 on x86 (see CMakeLists.txt); when the target lacks the ISA
// entirely — non-x86, or a toolchain that refuses the flag — the table
// degrades to the scalar one and the dispatcher reports the level it
// actually got.

#include "core/simd_dispatch.h"

#if defined(__SSE4_2__)

#define TREL_KERNEL_VARIANT 1
#include "core/arena_kernels_impl.h"

namespace trel {

const ArenaKernels& SseArenaKernels() {
  static const ArenaKernels kTable{SimdLevel::kSse, "sse",
                                   &KernelExtrasContains,
                                   &KernelFilterIntersects,
                                   &KernelBatchReaches,
                                   &KernelBatchReachesTagged};
  return kTable;
}

}  // namespace trel

#else  // !defined(__SSE4_2__)

namespace trel {

const ArenaKernels& SseArenaKernels() { return ScalarArenaKernels(); }

}  // namespace trel

#endif
