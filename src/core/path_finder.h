#ifndef TREL_CORE_PATH_FINDER_H_
#define TREL_CORE_PATH_FINDER_H_

#include <vector>

#include "core/compressed_closure.h"
#include "graph/digraph.h"

namespace trel {

// Witness-path reconstruction guided by the compressed closure: instead
// of a blind DFS, each step picks an out-neighbor that still reaches the
// target (one interval lookup per candidate), so the walk never
// backtracks.  Cost: O(path length x out-degree x lookup), independent of
// the rest of the graph — the "lookup instead of traversal" economics
// extended from boolean queries to path queries.
//
// Returns the node sequence from `source` to `target` inclusive, or an
// empty vector when the target is unreachable.  {source} when source ==
// target.
std::vector<NodeId> FindPath(const Digraph& graph,
                             const CompressedClosure& closure, NodeId source,
                             NodeId target);

}  // namespace trel

#endif  // TREL_CORE_PATH_FINDER_H_
