#ifndef TREL_CORE_LABELING_H_
#define TREL_CORE_LABELING_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "core/interval.h"
#include "core/tree_cover.h"
#include "graph/digraph.h"

namespace trel {

// Knobs for the labeling pass.
struct LabelingOptions {
  // Spacing between consecutive postorder numbers (Section 4: "one can
  // leave gaps between numbers and the compression scheme would still work
  // correctly").  gap=1 reproduces the paper's static scheme exactly;
  // larger gaps leave room for incremental insertion.
  Label gap = 1;
  // Reserved slack appended to a node's tree interval *when it is
  // propagated to predecessors* (Section 4.1: h's interval "could have
  // been made [11,25], with the understanding that nodes numbered 21
  // through 25 are not reachable from h").  A node's own stored tree
  // interval is never padded.  The slack numbers are handed out by
  // DynamicClosure::RefineAbove for constant-time hierarchy refinement.
  // Must be in [0, gap).
  Label reserve = 0;
  // Apply the Section 3.2 adjacent-interval merging improvement after
  // propagation.  Order-dependent and incompatible with incremental
  // updates; off by default.
  bool merge_adjacent = false;
};

// The complete interval labeling of a DAG under a given tree cover.
struct NodeLabels {
  // postorder[v] = v's postorder number in the tree cover (times gap).
  std::vector<Label> postorder;
  // tree_interval[v] = [anchor_v + 1, postorder_v], where anchor_v is the
  // largest number assigned before v's subtree was entered.  With gap=1
  // this is exactly the paper's [lowest postorder among descendants, own
  // postorder]; with gaps the unassigned numbers below are reserved for
  // future descendants of v.
  std::vector<Interval> tree_interval;
  // intervals[v] = v's full interval set (tree interval + surviving
  // non-tree intervals) after reverse-topological propagation.
  std::vector<IntervalSet> intervals;
  // Copies of the options the labels were built with; dynamic updates must
  // reuse them.
  Label gap = 1;
  Label reserve = 0;

  // Total interval count over all nodes — the paper's optimization
  // objective (each interval is one unit of storage weight).
  int64_t TotalIntervals() const;
  // The paper's storage measure for the compressed closure: two endpoints
  // per interval.
  int64_t StorageUnits() const { return 2 * TotalIntervals(); }
};

// Assigns postorder numbers and tree intervals, then propagates interval
// sets in reverse topological order over all arcs, discarding subsumed
// intervals (Section 3.2).  Fails if `graph` is cyclic or options are
// inconsistent.
StatusOr<NodeLabels> BuildLabels(const Digraph& graph, const TreeCover& cover,
                                 const LabelingOptions& options = {});

// One node's complete label state, as shipped in a ClosureDelta.
struct NodeLabelDelta {
  NodeId node = kNoNode;
  Label postorder = 0;
  Interval tree_interval{0, 0};
  IntervalSet intervals;
};

// The label entries that changed since the last export, plus the node
// universe they belong to.  Produced by DynamicClosure::ExportDelta() and
// consumed by CompressedClosure::WithDelta(): every node whose postorder
// number or interval set differs from the base snapshot — including every
// node created since — must have an entry, and entries are sorted by node
// id.  Nodes absent from `entries` are guaranteed unchanged, which is what
// lets the overlay snapshot share their storage with the base.
struct ClosureDelta {
  // Total node count at export time (>= the base snapshot's count; node
  // ids are never recycled within one index lineage).
  NodeId num_nodes = 0;
  std::vector<NodeLabelDelta> entries;
};

// Propagation only: recomputes intervals[] from tree_interval[] and the
// arcs, reusing the existing postorder numbering.  `reverse_topo` must be
// a reverse topological order of `graph`.  A node's tree interval is
// padded on propagation by pad_per_node[v] if provided, else by
// labels.reserve uniformly.  Used by the dynamic index after structural
// deletions, where partially consumed reserve pools require per-node pads.
void PropagateIntervals(const Digraph& graph,
                        const std::vector<NodeId>& reverse_topo,
                        NodeLabels& labels,
                        const std::vector<Label>* pad_per_node = nullptr);

}  // namespace trel

#endif  // TREL_CORE_LABELING_H_
