#include "core/tree_cover_index.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/random.h"

namespace trel {
namespace {

// Thread-local scratch for the pruned fallback DFS, so concurrent
// readers never contend and repeated queries reuse warm buffers.  The
// visited set is a stamp vector: bumping the stamp clears it in O(1).
struct SearchScratch {
  std::vector<uint32_t> stamp;
  uint32_t cur = 0;
  std::vector<NodeId> stack;

  void Begin(NodeId n) {
    if (stamp.size() < static_cast<size_t>(n)) {
      stamp.assign(static_cast<size_t>(n), 0);
      cur = 0;
    }
    if (++cur == 0) {  // Stamp wrap: hard-clear once every 2^32 searches.
      std::fill(stamp.begin(), stamp.end(), 0);
      cur = 1;
    }
    stack.clear();
  }
};

SearchScratch& Scratch() {
  thread_local SearchScratch scratch;
  return scratch;
}

}  // namespace

TreeCoverIndex TreeCoverIndex::Build(const Digraph& graph, int num_trees,
                                     uint64_t seed) {
  TREL_CHECK(num_trees >= 1);
  TreeCoverIndex index;
  const NodeId n = graph.NumNodes();
  index.num_nodes_ = n;
  index.num_trees_ = num_trees;
  index.labels_.assign(static_cast<size_t>(n) * num_trees, TreeLabel{});

  // Freeze the adjacency as CSR for the fallback DFS.
  index.adj_offset_.assign(static_cast<size_t>(n) + 1, 0);
  index.adj_.reserve(static_cast<size_t>(graph.NumArcs()));
  for (NodeId v = 0; v < n; ++v) {
    const auto& out = graph.OutNeighbors(v);
    index.adj_.insert(index.adj_.end(), out.begin(), out.end());
    index.adj_offset_[static_cast<size_t>(v) + 1] =
        static_cast<int64_t>(index.adj_.size());
  }

  Random rng(seed);
  std::vector<NodeId> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  // Iterative DFS frames: node plus the next out-neighbor slot to try.
  std::vector<std::pair<NodeId, int64_t>> stack;
  std::vector<uint8_t> visited;
  for (int t = 0; t < num_trees; ++t) {
    // Random start order plus per-node random out-arc order make the k
    // postorders independent — that independence is what lets k small
    // intervals refute most non-reachable pairs.
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.Uniform(static_cast<uint64_t>(i))]);
    }
    visited.assign(static_cast<size_t>(n), 0);
    int32_t next_rank = 0;
    std::vector<NodeId> shuffled_out;
    for (NodeId root : order) {
      if (visited[root]) continue;
      visited[root] = 1;
      stack.clear();
      stack.emplace_back(root, index.adj_offset_[root]);
      while (!stack.empty()) {
        auto& [v, cursor] = stack.back();
        if (cursor < index.adj_offset_[static_cast<size_t>(v) + 1]) {
          // Lazy Fisher-Yates over v's CSR run: draw a random untried
          // slot and swap it into `cursor`'s position.  Reordering adj_
          // in place is harmless — a run's neighbor ORDER never matters
          // to queries or to the label fold below, only its membership.
          const int64_t end = index.adj_offset_[static_cast<size_t>(v) + 1];
          const int64_t pick =
              cursor + static_cast<int64_t>(
                           rng.Uniform(static_cast<uint64_t>(end - cursor)));
          std::swap(index.adj_[cursor], index.adj_[pick]);
          const NodeId w = index.adj_[cursor];
          ++cursor;
          if (!visited[w]) {
            visited[w] = 1;
            stack.emplace_back(w, index.adj_offset_[w]);
          }
          continue;
        }
        // Finish v: in a DAG every out-neighbor finished already, so its
        // interval is final — fold the children's lows in now.
        const int32_t rank = next_rank++;
        int32_t lo = rank;
        for (int64_t a = index.adj_offset_[v];
             a < index.adj_offset_[static_cast<size_t>(v) + 1]; ++a) {
          lo = std::min(lo, index.LabelOf(index.adj_[a], t).lo);
        }
        TreeLabel& label =
            index.labels_[static_cast<size_t>(v) * num_trees + t];
        label.lo = lo;
        label.hi = rank;
        stack.pop_back();
      }
    }
    TREL_CHECK(next_rank == n);
  }
  return index;
}

bool TreeCoverIndex::ReachesTraced(NodeId u, NodeId v,
                                   ProbeTrace* trace) const {
  TREL_CHECK(u >= 0 && u < num_nodes_);
  TREL_CHECK(v >= 0 && v < num_nodes_);
  trace->tag = ProbeTag::kSlot;
  trace->extras_probes = 0;
  if (u == v) return true;
  if (!LabelsAdmit(u, v)) {
    trace->tag = ProbeTag::kFilterReject;
    trace->extras_probes = static_cast<uint32_t>(num_trees_);
    return false;
  }
  // Label-pruned DFS: expand only nodes whose labels still admit v.
  trace->tag = ProbeTag::kFallback;
  SearchScratch& scratch = Scratch();
  scratch.Begin(num_nodes_);
  scratch.stamp[u] = scratch.cur;
  scratch.stack.push_back(u);
  uint32_t expanded = 0;
  while (!scratch.stack.empty()) {
    const NodeId x = scratch.stack.back();
    scratch.stack.pop_back();
    ++expanded;
    for (int64_t a = adj_offset_[x];
         a < adj_offset_[static_cast<size_t>(x) + 1]; ++a) {
      const NodeId w = adj_[a];
      if (w == v) {
        trace->extras_probes = expanded;
        return true;
      }
      if (scratch.stamp[w] != scratch.cur && LabelsAdmit(w, v)) {
        scratch.stamp[w] = scratch.cur;
        scratch.stack.push_back(w);
      }
    }
  }
  trace->extras_probes = expanded;
  return false;
}

}  // namespace trel
