#ifndef TREL_CORE_LABEL_ARENA_H_
#define TREL_CORE_LABEL_ARENA_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/interval.h"
#include "core/labeling.h"
#include "graph/digraph.h"

namespace trel {

// Caller-provided parallel executor: runs body(begin, end) over a
// partition of [0, n) and returns once every chunk completed.  The
// service's worker pool satisfies this shape; core code never spawns
// threads of its own.
using ParallelRunner =
    std::function<void(int64_t, const std::function<void(int64_t, int64_t)>&)>;

// Flat, cache-friendly storage for a complete interval labeling — the
// immutable base layer of a CompressedClosure.
//
// The per-node `std::vector<IntervalSet>` layout costs a point query two
// dependent pointer chases (IntervalSet header, then its heap buffer)
// plus a third for the target's postorder number, each a likely cache
// miss on large graphs.  Worse, on dense closures (hundreds of intervals
// per node) a negative membership probe binary-searches the node's
// interval list: ~log2(k) *dependent* misses, which measurements show is
// where nearly all query time goes.  The arena attacks both:
//
//   * `slots[v]` packs v's postorder number, its FIRST interval inline,
//     and the location of any remaining intervals, into one 32-byte slot
//     (two slots per cache line).  Most nodes carry a single interval
//     (the paper's central observation), so `slots[u]` + `slots[v]` is
//     the whole query.
//   * `extras` holds every interval after the first, for all nodes,
//     grouped by node id.  Each node's run is laid out as an implicit
//     BFS (Eytzinger) search tree keyed on `hi`, NOT in sorted order:
//     the probe path descends index 2i/2i+1 so the next two levels can
//     be software-prefetched while the current compare resolves, which
//     roughly halves the dependent-miss chain of the search.  Index 0 of
//     the run holds a summary interval {min lo, max hi} of the extras
//     for an O(1) out-of-range reject; the tree occupies indices
//     1..extra_count.  In-order traversal recovers ascending order
//     (ForEachExtra).
//   * `filters` gives every node one 64-byte (512-bit) coverage bitmap
//     over the postorder-label space (bucket = label >> filter_shift).
//     A bit is set iff some extra of the node intersects that bucket.
//     Interval labelings of large random DAGs are mostly *sparse* —
//     membership probes overwhelmingly miss — and an unset bit proves
//     absence with a single cache-line load instead of a tree descent.
//   * `dir_labels`/`dir_nodes` are the sorted postorder->node directory
//     split into parallel arrays, so range binary searches touch densely
//     packed labels and enumeration copies densely packed node ids.
//
// Everything here is plain data: built once, shared via shared_ptr by
// WithDelta overlay snapshots, never mutated afterwards.
struct LabelArena {
  struct NodeSlot {
    Label postorder = 0;
    // The node's first (lowest-lo) interval; [1, 0] (empty) when the node
    // has no intervals at all, so Contains() rejects without a branch on
    // a separate count.
    Interval first{1, 0};
    // Remaining intervals live in the Eytzinger run extras[extra_begin,
    // extra_begin + extra_count] (index extra_begin is the summary slot;
    // zero run slots when extra_count == 0).  uint32 keeps the slot at 32
    // bytes; arenas past 4G intervals are rejected at build time.
    uint32_t extra_begin = 0;
    uint32_t extra_count = 0;
  };
  static_assert(sizeof(NodeSlot) == 32, "NodeSlot must stay cache-packed");

  // Words per node in `filters` (kFilterWords * 64 buckets per node).
  static constexpr int64_t kFilterWords = 8;

  std::vector<NodeSlot> slots;
  std::vector<Interval> extras;
  std::vector<uint64_t> filters;
  std::vector<Label> dir_labels;
  std::vector<NodeId> dir_nodes;
  // Label-space scaling for filter buckets: bucket(x) = uint64(x) >>
  // filter_shift, guaranteed < kFilterWords * 64 for every assigned label.
  int filter_shift = 0;

  NodeId num_nodes() const { return static_cast<NodeId>(slots.size()); }

  int64_t IntervalCount(NodeId v) const {
    const NodeSlot& s = slots[v];
    return (s.first.lo <= s.first.hi ? 1 : 0) +
           static_cast<int64_t>(s.extra_count);
  }

  // Issues a prefetch of u's filter line.  Callers that know the source
  // before resolving the target's label (Reaches, the batch kernel) hide
  // the filter's memory latency behind that load entirely.
  void PrefetchSource(NodeId u) const {
    __builtin_prefetch(filters.data() + u * kFilterWords);
  }

  // True iff some interval of `u` contains `x`.  The hot read path:
  // inline first-interval check, then filter reject, then the prefetched
  // Eytzinger descent — about two dependent misses end to end on large
  // arenas where the old sorted-run binary search took six or more.
  bool Contains(NodeId u, Label x) const {
    const NodeSlot& s = slots[u];
    if (x < s.first.lo) return false;  // Antichain: every lo is >= first.lo.
    if (x <= s.first.hi) return true;
    if (s.extra_count == 0) return false;
    const Interval* base = extras.data() + s.extra_begin;
    __builtin_prefetch(base);
    const uint64_t b = static_cast<uint64_t>(x) >> filter_shift;
    // Labels past the last bucket exceed every label this arena was built
    // from (delta snapshots probe new nodes' numbers against old arenas),
    // so no interval here can contain them.
    if (b >= static_cast<uint64_t>(kFilterWords) * 64) return false;
    if (((filters[u * kFilterWords + (b >> 6)] >> (b & 63)) & 1) == 0) {
      return false;
    }
    if (x > base[0].hi) return false;  // Above every extra's hi.
    // Descend for the smallest hi >= x; its lo decides (antichain: both
    // endpoint sequences ascend in sorted order).  `cand` tracks the last
    // left turn, i.e. the in-order successor when the walk falls off.
    const uint32_t k = s.extra_count;
    uint32_t i = 1, cand = 0;
    while (i <= k) {
      __builtin_prefetch(base + 4 * static_cast<size_t>(i));
      if (base[i].hi >= x) {
        cand = i;
        i = 2 * i;
      } else {
        i = 2 * i + 1;
      }
    }
    return cand != 0 && base[cand].lo <= x;
  }

  // In-order traversal of u's extras — ascending (lo, hi) — calling
  // `fn(const Interval&)`; stops early when fn returns false.  Returns
  // false iff stopped early.
  template <typename Fn>
  bool ForEachExtra(NodeId u, Fn&& fn) const {
    const NodeSlot& s = slots[u];
    if (s.extra_count == 0) return true;
    const Interval* base = extras.data() + s.extra_begin;
    const uint32_t k = s.extra_count;
    // Iterative in-order walk of the implicit tree.  The explicit stack
    // holds the ancestors whose left subtree is still in progress, so
    // memory use is bounded by the tree height (< 33 levels for any
    // uint32 count) instead of one call frame per interval — dense nodes
    // with tens of thousands of extras used to overflow the stack here.
    uint32_t stack[33];
    int top = 0;
    uint32_t i = 1;
    while (i <= k || top > 0) {
      while (i <= k) {
        stack[top++] = i;
        i = 2 * i;
      }
      const uint32_t node = stack[--top];
      if (!fn(base[node])) return false;
      i = 2 * node + 1;
    }
    return true;
  }

  // Directory binary searches: index of the first entry with label >= x /
  // > x.  The label array is contiguous 8-byte keys, so these walk the
  // minimum possible number of cache lines.
  int64_t DirLowerBound(Label x) const;
  int64_t DirUpperBound(Label x) const;

  // Bytes held by the flat arrays (capacity is trimmed at build time).
  int64_t ByteSize() const;
};

// Builds the arena for `labels`.
//
// `sorted_directory` may carry all (postorder, node) pairs already sorted
// by postorder number — DynamicClosure maintains exactly this map, and
// handing it over turns the O(n log n) export sort into an O(n) copy.
// Pass empty to have the builder sort.
//
// `runner`, when non-null, shards the slot/extras fill, the directory
// sort (sorted shards + merge cascade), and the final split across its
// workers; arenas below a size floor build serially regardless because
// fan-out overhead would dominate.
LabelArena BuildLabelArena(
    const NodeLabels& labels,
    std::vector<std::pair<Label, NodeId>> sorted_directory = {},
    const ParallelRunner* runner = nullptr);

}  // namespace trel

#endif  // TREL_CORE_LABEL_ARENA_H_
