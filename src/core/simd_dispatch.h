#ifndef TREL_CORE_SIMD_DISPATCH_H_
#define TREL_CORE_SIMD_DISPATCH_H_

namespace trel {

struct ArenaKernels;

// Vector instruction tiers the arena query kernels are specialized for.
// Values are ordered: a higher level strictly extends the ISA of every
// lower one, so "clamp to the highest supported" is a plain min().
enum class SimdLevel : int {
  kScalar = 0,  // portable C++, any target
  kSse = 1,     // x86-64 with SSE4.2 (64-bit vector compares, ptest)
  kAvx2 = 2,    // x86-64 with AVX2 (256-bit lanes)
};

// "scalar" / "sse" / "avx2".
const char* SimdLevelName(SimdLevel level);

// Highest level this host can execute, probed once via cpuid (the
// compiler builtins handle the OSXSAVE dance for AVX state).  Always
// kScalar on non-x86 targets.
SimdLevel HighestSupportedSimdLevel();

// The level requested through the TREL_SIMD environment variable
// (scalar|sse|avx2), or `fallback` when the variable is unset or
// unparseable (a bad value warns once on stderr).
SimdLevel RequestedSimdLevel(SimdLevel fallback);

// Kernel table for one level.  The returned table's `level` field may be
// LOWER than requested when the matching TU was compiled without the ISA
// (non-x86 build): callers must treat the table, not the request, as
// authoritative.
const ArenaKernels& KernelsForLevel(SimdLevel level);

// The process-wide kernel table: TREL_SIMD override if set, else the
// highest host-supported level, clamped to what the host can execute so
// a stale env var can never cause an illegal instruction.  Resolved once
// on first use and cached.
const ArenaKernels& ActiveKernels();

// Level of ActiveKernels(), for metrics and tooling.
SimdLevel ActiveSimdLevel();

// Per-level tables, each defined in its own translation unit so vector
// flags never leak into common objects (see src/core/CMakeLists.txt).
// A TU compiled without its ISA returns the scalar table.
const ArenaKernels& ScalarArenaKernels();
const ArenaKernels& SseArenaKernels();
const ArenaKernels& Avx2ArenaKernels();

}  // namespace trel

#endif  // TREL_CORE_SIMD_DISPATCH_H_
