// Portable scalar arena kernels: the reference implementation every
// vector level must match bit-for-bit, and the fallback table on hosts
// (or targets) without SSE4.2.  Compiled with the project's baseline
// flags only — no vector ISA.

#define TREL_KERNEL_VARIANT 0
#include "core/arena_kernels_impl.h"

namespace trel {

const ArenaKernels& ScalarArenaKernels() {
  static const ArenaKernels kTable{SimdLevel::kScalar, "scalar",
                                   &KernelExtrasContains,
                                   &KernelFilterIntersects,
                                   &KernelBatchReaches,
                                   &KernelBatchReachesTagged};
  return kTable;
}

}  // namespace trel
