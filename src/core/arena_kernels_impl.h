// Implementation body for one arena-kernel translation unit.  NOT a
// normal header: arena_kernels_{scalar,sse,avx2}.cc each define
// TREL_KERNEL_VARIANT (0 = portable scalar, 1 = SSE4.2, 2 = AVX2) and
// include this file exactly once; the TU is compiled with that level's
// vector flags (see src/core/CMakeLists.txt), so the intrinsics below
// never leak into commonly-compiled objects.  Every variant computes
// bit-identical answers — they differ only in how the compare work of
// short-run scans and 512-bit filter tests is issued, and the batch
// engine's pipeline structure is shared verbatim.

#ifndef TREL_KERNEL_VARIANT
#error "arena_kernels_impl.h must be included with TREL_KERNEL_VARIANT set"
#endif

#include <algorithm>
#include <cstdint>
#include <utility>

#include "core/arena_kernels.h"
#include "core/label_arena.h"

#if TREL_KERNEL_VARIANT >= 1
#include <immintrin.h>
#endif

namespace trel {
namespace {

// Extras runs at or below this length are scanned linearly (wide
// compares cover the whole run in a handful of instructions, with no
// dependent-load chain); longer runs descend the Eytzinger tree.  Sized
// per variant to roughly two cache lines of vector work.
#if TREL_KERNEL_VARIANT == 2
constexpr uint32_t kLinearScanMax = 32;
#elif TREL_KERNEL_VARIANT == 1
constexpr uint32_t kLinearScanMax = 16;
#else
constexpr uint32_t kLinearScanMax = 4;
#endif

// True iff some interval of a[0..k) contains x.  Order-independent, so
// it works directly on the Eytzinger-permuted run.
#if TREL_KERNEL_VARIANT == 2

inline bool LinearScanHit(const Interval* a, uint32_t k, Label x) {
  const __m256i xv = _mm256_set1_epi64x(x);
  unsigned hits = 0;
  uint32_t i = 0;
  // One 256-bit lane holds two 16-byte intervals [lo0 hi0 lo1 hi1].  A
  // lane is "bad" when its bound excludes x: lo > x for even lanes,
  // x > hi for odd lanes; an interval hits iff both of its lanes are
  // good.  Two registers (4 intervals) per iteration.
  for (; i + 4 <= k; i += 4) {
    const __m256i p0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i p1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 2));
    const __m256d bad0 =
        _mm256_blend_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(p0, xv)),
                        _mm256_castsi256_pd(_mm256_cmpgt_epi64(xv, p0)), 0xA);
    const __m256d bad1 =
        _mm256_blend_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(p1, xv)),
                        _mm256_castsi256_pd(_mm256_cmpgt_epi64(xv, p1)), 0xA);
    const unsigned good0 = ~static_cast<unsigned>(_mm256_movemask_pd(bad0));
    const unsigned good1 = ~static_cast<unsigned>(_mm256_movemask_pd(bad1));
    hits |= (good0 & (good0 >> 1) & 0x5u) | (good1 & (good1 >> 1) & 0x5u);
  }
  for (; i + 2 <= k; i += 2) {
    const __m256i p =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256d bad =
        _mm256_blend_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(p, xv)),
                        _mm256_castsi256_pd(_mm256_cmpgt_epi64(xv, p)), 0xA);
    const unsigned good = ~static_cast<unsigned>(_mm256_movemask_pd(bad));
    hits |= good & (good >> 1) & 0x5u;
  }
  if (hits != 0) return true;
  return i < k && a[i].lo <= x && x <= a[i].hi;
}

inline bool FilterIntersectsImpl(const uint64_t* filter,
                                 const uint64_t* mask) {
  const __m256i a0 = _mm256_and_si256(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(filter)),
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask)));
  const __m256i a1 = _mm256_and_si256(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(filter + 4)),
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + 4)));
  const __m256i any = _mm256_or_si256(a0, a1);
  return _mm256_testz_si256(any, any) == 0;
}

#elif TREL_KERNEL_VARIANT == 1

inline bool LinearScanHit(const Interval* a, uint32_t k, Label x) {
  const __m128i xv = _mm_set1_epi64x(x);
  unsigned hits = 0;
  // One 128-bit lane holds one interval [lo hi]; the interval hits iff
  // neither lane excludes x (lo > x / x > hi).  Two intervals per
  // iteration to keep the compare ports busy.
  uint32_t i = 0;
  for (; i + 2 <= k; i += 2) {
    const __m128i p0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i p1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i + 1));
    const __m128d bad0 =
        _mm_blend_pd(_mm_castsi128_pd(_mm_cmpgt_epi64(p0, xv)),
                     _mm_castsi128_pd(_mm_cmpgt_epi64(xv, p0)), 0x2);
    const __m128d bad1 =
        _mm_blend_pd(_mm_castsi128_pd(_mm_cmpgt_epi64(p1, xv)),
                     _mm_castsi128_pd(_mm_cmpgt_epi64(xv, p1)), 0x2);
    hits |= static_cast<unsigned>(_mm_movemask_pd(bad0) == 0) |
            static_cast<unsigned>(_mm_movemask_pd(bad1) == 0);
  }
  if (hits != 0) return true;
  return i < k && a[i].lo <= x && x <= a[i].hi;
}

inline bool FilterIntersectsImpl(const uint64_t* filter,
                                 const uint64_t* mask) {
  __m128i any = _mm_setzero_si128();
  for (int w = 0; w < 8; w += 2) {
    any = _mm_or_si128(
        any, _mm_and_si128(
                 _mm_loadu_si128(reinterpret_cast<const __m128i*>(filter + w)),
                 _mm_loadu_si128(reinterpret_cast<const __m128i*>(mask + w))));
  }
  return _mm_testz_si128(any, any) == 0;
}

#else  // scalar

inline bool LinearScanHit(const Interval* a, uint32_t k, Label x) {
  // Branch-free accumulate: short runs mispredict badly under random
  // probes, and the compiler can unroll this form.
  unsigned hit = 0;
  for (uint32_t i = 0; i < k; ++i) {
    hit |= static_cast<unsigned>(a[i].lo <= x) &
           static_cast<unsigned>(x <= a[i].hi);
  }
  return hit != 0;
}

inline bool FilterIntersectsImpl(const uint64_t* filter,
                                 const uint64_t* mask) {
  uint64_t any = 0;
  for (int w = 0; w < 8; ++w) any |= filter[w] & mask[w];
  return any != 0;
}

#endif  // TREL_KERNEL_VARIANT

// The PR 3 descent, unchanged: smallest hi >= x decides via its lo
// (antichain invariant), grandchildren prefetched along the way.
inline bool EytzingerDescent(const Interval* base, uint32_t k, Label x) {
  uint32_t i = 1, cand = 0;
  while (i <= k) {
    __builtin_prefetch(base + 4 * static_cast<size_t>(i));
    if (base[i].hi >= x) {
      cand = i;
      i = 2 * i;
    } else {
      i = 2 * i + 1;
    }
  }
  return cand != 0 && base[cand].lo <= x;
}

bool KernelExtrasContains(const Interval* base, uint32_t count, Label x) {
  // Summary reject (base[0] = {min lo, max hi} of the run).
  if (x < base[0].lo || x > base[0].hi) return false;
  if (count <= kLinearScanMax) return LinearScanHit(base + 1, count, x);
  return EytzingerDescent(base, count, x);
}

bool KernelFilterIntersects(const uint64_t* filter, const uint64_t* mask) {
  return FilterIntersectsImpl(filter, mask);
}

// --- Software-pipelined batch engine ---------------------------------------
//
// Three stages, kept K queries apart so the dependent cache misses of
// different queries overlap instead of serializing:
//   A. kPrefetchDistance ahead of the resolve point, issue prefetches
//      for the source slot, the source's filter line, and the target
//      slot (independent loads — no use yet).
//   B. at the resolve point the slot lines have usually arrived: decide
//      invalid / self / first-interval / no-extras queries outright and
//      kill most of the rest with the one-bit coverage-filter test.
//   C. survivors (filter hits) are *queued* behind a prefetch of their
//      extras run; once kMaxPending have accumulated, short runs are
//      answered with one vector scan each and long runs descend their
//      Eytzinger trees in lockstep — every live descent advances one
//      level per round, so K dependent misses are in flight at once.
//
// Runs of >= kGroupMin consecutive queries sharing a source take a
// grouped path instead: the source slot is resolved once, the
// undecided targets' buckets are accumulated into a 512-bit mask, and a
// single whole-line filter intersection test rejects the entire group's
// extras work when no target bucket overlaps the source's coverage.
//
// Batches of <= kSmallBatchMax queries bypass the pipeline entirely: a
// plain prefetch-ahead loop with immediate extras resolution.  At small
// n the pending-queue/flush machinery and the grouped path's mask setup
// cost more than the overlapped misses save (the PR 4 128-query
// hot-cache regression), and a hot cache means there is little miss
// latency to overlap in the first place.  The bypass shares this TU's
// compare primitives, so answers stay bit-identical across levels; its
// stats never include group_rejects (no grouping below the threshold).
//
// The engine is templated on kTagged: the tagged instantiation
// additionally writes the deciding ProbeTag per query for the obs
// tracer, the untagged one compiles to exactly the pre-tracing code.

constexpr int64_t kPrefetchDistance = 8;
constexpr int kMaxPending = 8;
constexpr int64_t kGroupMin = 16;
constexpr int64_t kGroupMax = 256;
constexpr int64_t kSmallBatchMax = 192;

template <bool kTagged>
void KernelBatchReachesImpl(const LabelArena& arena,
                            const std::pair<NodeId, NodeId>* pairs, int64_t n,
                            uint8_t* out, BatchKernelStats* stats_out,
                            uint8_t* tags) {
  BatchKernelStats stats;
  const LabelArena::NodeSlot* slots = arena.slots.data();
  const Interval* extras = arena.extras.data();
  const uint64_t* filters = arena.filters.data();
  const uint32_t num = static_cast<uint32_t>(arena.num_nodes());
  const int shift = arena.filter_shift;
  constexpr uint64_t kBuckets =
      static_cast<uint64_t>(LabelArena::kFilterWords) * 64;
  const auto valid = [num](NodeId id) {
    return static_cast<uint32_t>(id) < num;
  };
  const auto set_tag = [tags](int64_t idx, ProbeTag t) {
    if constexpr (kTagged) {
      tags[idx] = static_cast<uint8_t>(t);
    } else {
      (void)tags;
      (void)idx;
      (void)t;
    }
  };

  if (n <= kSmallBatchMax) {
    // Small-batch bypass: no pending queue, no grouping — resolve each
    // query in order with the prefetcher running kPrefetchDistance ahead.
    for (int64_t i = 0; i < n; ++i) {
      if (i + kPrefetchDistance < n) {
        const auto& ahead = pairs[i + kPrefetchDistance];
        if (valid(ahead.first)) {
          __builtin_prefetch(slots + ahead.first);
          __builtin_prefetch(filters + static_cast<size_t>(ahead.first) *
                                           LabelArena::kFilterWords);
        }
        if (valid(ahead.second)) __builtin_prefetch(slots + ahead.second);
      }
      const NodeId u = pairs[i].first;
      const NodeId v = pairs[i].second;
      if (!valid(u) || !valid(v)) {
        out[i] = 0;
        ++stats.fast_path;
        set_tag(i, ProbeTag::kSlot);
        continue;
      }
      if (u == v) {
        out[i] = 1;
        ++stats.fast_path;
        set_tag(i, ProbeTag::kSlot);
        continue;
      }
      const LabelArena::NodeSlot& s = slots[u];
      const Label x = slots[v].postorder;
      if (x < s.first.lo || x <= s.first.hi || s.extra_count == 0) {
        out[i] = (x >= s.first.lo && x <= s.first.hi) ? 1 : 0;
        ++stats.fast_path;
        set_tag(i, ProbeTag::kSlot);
        continue;
      }
      const uint64_t b = static_cast<uint64_t>(x) >> shift;
      if (b >= kBuckets ||
          ((filters[static_cast<size_t>(u) * LabelArena::kFilterWords +
                    (b >> 6)] >>
            (b & 63)) &
           1) == 0) {
        out[i] = 0;
        ++stats.filter_rejects;
        set_tag(i, ProbeTag::kFilterReject);
        continue;
      }
      ++stats.extras_searches;
      set_tag(i, ProbeTag::kExtrasSearch);
      out[i] =
          KernelExtrasContains(extras + s.extra_begin, s.extra_count, x) ? 1
                                                                         : 0;
    }
    if (stats_out != nullptr) *stats_out += stats;
    return;
  }

  struct Pending {
    const Interval* base;
    uint32_t count;
    Label x;
    int64_t idx;
  };
  Pending pend[kMaxPending];
  int np = 0;

  struct Descent {
    const Interval* base;
    uint32_t i;
    uint32_t cand;
    uint32_t k;
    Label x;
    int64_t idx;
  };

  const auto flush = [&] {
    Descent live[kMaxPending];
    int nl = 0;
    for (int p = 0; p < np; ++p) {
      const Pending& q = pend[p];
      ++stats.extras_searches;
      if (q.x < q.base[0].lo || q.x > q.base[0].hi) {
        out[q.idx] = 0;  // Summary reject.
        continue;
      }
      if (q.count <= kLinearScanMax) {
        out[q.idx] = LinearScanHit(q.base + 1, q.count, q.x) ? 1 : 0;
        continue;
      }
      live[nl++] = Descent{q.base, 1, 0, q.count, q.x, q.idx};
    }
    np = 0;
    // Lockstep descents: one level per query per round.
    while (nl > 0) {
      int p = 0;
      while (p < nl) {
        Descent& d = live[p];
        if (d.i <= d.k) {
          __builtin_prefetch(d.base + 4 * static_cast<size_t>(d.i));
          if (d.base[d.i].hi >= d.x) {
            d.cand = d.i;
            d.i = 2 * d.i;
          } else {
            d.i = 2 * d.i + 1;
          }
          ++p;
        } else {
          out[d.idx] = (d.cand != 0 && d.base[d.cand].lo <= d.x) ? 1 : 0;
          live[p] = live[--nl];  // Retire; recheck the swapped-in entry.
        }
      }
    }
  };

  int64_t i = 0;
  while (i < n) {
    const NodeId u = pairs[i].first;
    int64_t j = i + 1;
    if (valid(u)) {
      const int64_t cap = std::min<int64_t>(n, i + kGroupMax);
      while (j < cap && pairs[j].first == u) ++j;
    }

    if (j - i >= kGroupMin) {
      flush();
      const LabelArena::NodeSlot s = slots[u];
      const uint64_t* filter =
          filters + static_cast<size_t>(u) * LabelArena::kFilterWords;
      __builtin_prefetch(filter);
      uint64_t mask[LabelArena::kFilterWords] = {};
      int64_t undecided_idx[kGroupMax];
      Label undecided_x[kGroupMax];
      int64_t nu = 0;
      for (int64_t q = i; q < j; ++q) {
        if (q + kPrefetchDistance < j) {
          const NodeId ahead = pairs[q + kPrefetchDistance].second;
          if (valid(ahead)) __builtin_prefetch(slots + ahead);
        }
        const NodeId v = pairs[q].second;
        if (!valid(v)) {
          out[q] = 0;
          ++stats.fast_path;
          set_tag(q, ProbeTag::kSlot);
          continue;
        }
        if (u == v) {
          out[q] = 1;
          ++stats.fast_path;
          set_tag(q, ProbeTag::kSlot);
          continue;
        }
        const Label x = slots[v].postorder;
        if (x < s.first.lo) {
          out[q] = 0;
          ++stats.fast_path;
          set_tag(q, ProbeTag::kSlot);
          continue;
        }
        if (x <= s.first.hi) {
          out[q] = 1;
          ++stats.fast_path;
          set_tag(q, ProbeTag::kSlot);
          continue;
        }
        if (s.extra_count == 0) {
          out[q] = 0;
          ++stats.fast_path;
          set_tag(q, ProbeTag::kSlot);
          continue;
        }
        const uint64_t b = static_cast<uint64_t>(x) >> shift;
        if (b >= kBuckets) {
          out[q] = 0;
          ++stats.filter_rejects;
          set_tag(q, ProbeTag::kFilterReject);
          continue;
        }
        mask[b >> 6] |= uint64_t{1} << (b & 63);
        undecided_idx[nu] = q;
        undecided_x[nu] = x;
        ++nu;
      }
      if (nu > 0) {
        if (!KernelFilterIntersects(filter, mask)) {
          for (int64_t q = 0; q < nu; ++q) {
            out[undecided_idx[q]] = 0;
            set_tag(undecided_idx[q], ProbeTag::kGroupReject);
          }
          stats.group_rejects += nu;
        } else {
          const Interval* base = extras + s.extra_begin;
          for (int64_t q = 0; q < nu; ++q) {
            const Label x = undecided_x[q];
            const uint64_t b = static_cast<uint64_t>(x) >> shift;
            if (((filter[b >> 6] >> (b & 63)) & 1) == 0) {
              out[undecided_idx[q]] = 0;
              ++stats.filter_rejects;
              set_tag(undecided_idx[q], ProbeTag::kFilterReject);
              continue;
            }
            ++stats.extras_searches;
            set_tag(undecided_idx[q], ProbeTag::kExtrasSearch);
            out[undecided_idx[q]] =
                KernelExtrasContains(base, s.extra_count, x) ? 1 : 0;
          }
        }
      }
      i = j;
      continue;
    }

    for (; i < j; ++i) {
      // Stage A.
      if (i + kPrefetchDistance < n) {
        const auto& ahead = pairs[i + kPrefetchDistance];
        if (valid(ahead.first)) {
          __builtin_prefetch(slots + ahead.first);
          __builtin_prefetch(filters + static_cast<size_t>(ahead.first) *
                                           LabelArena::kFilterWords);
        }
        if (valid(ahead.second)) __builtin_prefetch(slots + ahead.second);
      }
      // Stage B.
      const NodeId uu = pairs[i].first;
      const NodeId v = pairs[i].second;
      if (!valid(uu) || !valid(v)) {
        out[i] = 0;
        ++stats.fast_path;
        set_tag(i, ProbeTag::kSlot);
        continue;
      }
      if (uu == v) {
        out[i] = 1;
        ++stats.fast_path;
        set_tag(i, ProbeTag::kSlot);
        continue;
      }
      const LabelArena::NodeSlot& s = slots[uu];
      const Label x = slots[v].postorder;
      if (x < s.first.lo) {
        out[i] = 0;
        ++stats.fast_path;
        set_tag(i, ProbeTag::kSlot);
        continue;
      }
      if (x <= s.first.hi) {
        out[i] = 1;
        ++stats.fast_path;
        set_tag(i, ProbeTag::kSlot);
        continue;
      }
      if (s.extra_count == 0) {
        out[i] = 0;
        ++stats.fast_path;
        set_tag(i, ProbeTag::kSlot);
        continue;
      }
      const uint64_t b = static_cast<uint64_t>(x) >> shift;
      if (b >= kBuckets ||
          ((filters[static_cast<size_t>(uu) * LabelArena::kFilterWords +
                    (b >> 6)] >>
            (b & 63)) &
           1) == 0) {
        out[i] = 0;
        ++stats.filter_rejects;
        set_tag(i, ProbeTag::kFilterReject);
        continue;
      }
      // Stage C.  Tagged at enqueue: everything that reaches the pending
      // queue counts as (and is tallied as) an extras search.
      const Interval* base = extras + s.extra_begin;
      __builtin_prefetch(base);
      set_tag(i, ProbeTag::kExtrasSearch);
      pend[np++] = Pending{base, s.extra_count, x, i};
      if (np == kMaxPending) flush();
    }
  }
  flush();
  if (stats_out != nullptr) *stats_out += stats;
}

void KernelBatchReaches(const LabelArena& arena,
                        const std::pair<NodeId, NodeId>* pairs, int64_t n,
                        uint8_t* out, BatchKernelStats* stats_out) {
  KernelBatchReachesImpl<false>(arena, pairs, n, out, stats_out, nullptr);
}

void KernelBatchReachesTagged(const LabelArena& arena,
                              const std::pair<NodeId, NodeId>* pairs, int64_t n,
                              uint8_t* out, BatchKernelStats* stats_out,
                              uint8_t* tags) {
  KernelBatchReachesImpl<true>(arena, pairs, n, out, stats_out, tags);
}

}  // namespace
}  // namespace trel
