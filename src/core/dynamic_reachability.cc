#include "core/dynamic_reachability.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"

namespace trel {

DynamicReachability::DynamicReachability(const ClosureOptions& options)
    : options_(options), index_(options) {}

StatusOr<DynamicReachability> DynamicReachability::Build(
    const Digraph& graph, const ClosureOptions& options) {
  DynamicReachability result(options);
  result.graph_ = graph;
  result.Rebuild();
  return result;
}

void DynamicReachability::Rebuild() {
  Condensation condensation = CondenseScc(graph_);
  component_of_ = condensation.component_of;
  members_ = condensation.members;
  auto rebuilt = DynamicClosure::Build(condensation.dag, options_);
  TREL_CHECK(rebuilt.ok()) << rebuilt.status().ToString();
  index_ = std::move(rebuilt).value();
  ++stats_.rebuilds;
}

NodeId DynamicReachability::AddNode() {
  const NodeId node = graph_.AddNode();
  auto component = index_.AddLeafUnder(kNoNode);
  TREL_CHECK(component.ok());
  component_of_.push_back(component.value());
  // Component ids always equal index node ids; a fresh singleton lands at
  // the end of both.
  TREL_CHECK_EQ(static_cast<size_t>(component.value()), members_.size());
  members_.push_back({node});
  return node;
}

Status DynamicReachability::AddArc(NodeId from, NodeId to) {
  TREL_RETURN_IF_ERROR(graph_.AddArc(from, to));
  const NodeId cf = component_of_[from];
  const NodeId ct = component_of_[to];
  if (cf == ct) {
    // Internal to one reachability class; nothing changes.
    ++stats_.incremental_arcs;
    return Status::Ok();
  }
  if (index_.Reaches(ct, cf)) {
    // Back arc: merges every component on a ct ~> cf path.  Recondense.
    Rebuild();
    return Status::Ok();
  }
  if (index_.graph().HasArc(cf, ct)) {
    // Parallel arc at component level (another node pair already links
    // the components).
    ++stats_.incremental_arcs;
    return Status::Ok();
  }
  Status status = index_.AddArc(cf, ct);
  TREL_CHECK(status.ok()) << status.ToString();
  ++stats_.incremental_arcs;
  return Status::Ok();
}

Status DynamicReachability::RemoveArc(NodeId from, NodeId to) {
  TREL_RETURN_IF_ERROR(graph_.RemoveArc(from, to));
  const NodeId cf = component_of_[from];
  const NodeId ct = component_of_[to];
  if (cf == ct) {
    // The class may split; recondense.
    Rebuild();
    return Status::Ok();
  }
  // Cross-component arc: the component graph loses this arc only if no
  // other node pair carries it.
  bool still_linked = false;
  for (NodeId u : members_[cf]) {
    for (NodeId w : graph_.OutNeighbors(u)) {
      if (component_of_[w] == ct) {
        still_linked = true;
        break;
      }
    }
    if (still_linked) break;
  }
  if (still_linked) return Status::Ok();
  Status status = index_.RemoveArc(cf, ct);
  TREL_CHECK(status.ok()) << status.ToString();
  return Status::Ok();
}

bool DynamicReachability::Reaches(NodeId u, NodeId v) const {
  TREL_CHECK(graph_.IsValidNode(u));
  TREL_CHECK(graph_.IsValidNode(v));
  return index_.Reaches(component_of_[u], component_of_[v]);
}

std::vector<NodeId> DynamicReachability::Successors(NodeId u) const {
  TREL_CHECK(graph_.IsValidNode(u));
  const NodeId cu = component_of_[u];
  std::vector<NodeId> result;
  for (NodeId member : members_[cu]) {
    if (member != u) result.push_back(member);
  }
  for (NodeId comp : index_.Successors(cu)) {
    result.insert(result.end(), members_[comp].begin(), members_[comp].end());
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace trel
