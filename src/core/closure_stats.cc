#include "core/closure_stats.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/check.h"

namespace trel {

std::string ClosureStats::ToString() const {
  std::ostringstream os;
  os << "nodes " << num_nodes << ", arcs " << num_arcs << " ("
     << num_tree_arcs << " tree, " << (num_arcs - num_tree_arcs)
     << " non-tree), roots " << num_roots << "\n";
  os << "intervals " << total_intervals << " (storage " << storage_units
     << ", arena " << arena_bytes << " bytes), avg/node "
     << avg_intervals_per_node << ", max/node "
     << max_intervals_per_node << ", single-interval nodes "
     << 100.0 * single_interval_fraction << "%\n";
  os << "tree depth max " << tree_depth_max << ", avg " << tree_depth_avg
     << "\n";
  os << "interval histogram:";
  for (size_t k = 0; k < interval_histogram.size(); ++k) {
    os << " " << k << (k + 1 == interval_histogram.size() ? "+" : "") << ":"
       << interval_histogram[k];
  }
  os << "\n";
  return os.str();
}

ClosureStats ComputeClosureStats(const Digraph& graph,
                                 const CompressedClosure& closure,
                                 int histogram_buckets) {
  TREL_CHECK_GE(histogram_buckets, 2);
  TREL_CHECK_EQ(graph.NumNodes(), closure.NumNodes());
  // Depth statistics walk the tree cover, which only describes the shared
  // base layer of a WithDelta overlay snapshot; stats are a full-export
  // affair (QueryService refreshes them on full publishes only).
  TREL_CHECK_EQ(closure.NumNodes(), closure.tree_cover().NumNodes())
      << "ComputeClosureStats requires a full-export closure, not a "
         "WithDelta overlay";
  ClosureStats stats;
  stats.num_nodes = graph.NumNodes();
  stats.num_arcs = graph.NumArcs();
  stats.interval_histogram.assign(histogram_buckets, 0);

  const TreeCover& cover = closure.tree_cover();
  stats.num_roots = static_cast<int64_t>(cover.roots.size());
  int64_t single_interval_nodes = 0;
  int64_t depth_sum = 0;

  // Tree depths by walking parents (memoized).
  std::vector<int> depth(stats.num_nodes, -1);
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    // Resolve v's depth, compressing along the way.
    std::vector<NodeId> chain;
    NodeId x = v;
    while (x != kNoNode && depth[x] < 0) {
      chain.push_back(x);
      x = cover.parent[x];
    }
    int base = x == kNoNode ? -1 : depth[x];
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      depth[*it] = ++base;
    }
  }
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    if (cover.parent[v] != kNoNode) ++stats.num_tree_arcs;
    stats.tree_depth_max = std::max<int64_t>(stats.tree_depth_max, depth[v]);
    depth_sum += depth[v];

    const int64_t k = closure.IntervalCountOf(v);
    stats.total_intervals += k;
    stats.max_intervals_per_node = std::max(stats.max_intervals_per_node, k);
    if (k == 1) ++single_interval_nodes;
    const int bucket =
        static_cast<int>(std::min<int64_t>(k, histogram_buckets - 1));
    ++stats.interval_histogram[bucket];
  }

  stats.storage_units = 2 * stats.total_intervals;
  stats.arena_bytes = closure.ArenaByteSize();
  if (stats.num_nodes > 0) {
    stats.avg_intervals_per_node =
        static_cast<double>(stats.total_intervals) / stats.num_nodes;
    stats.single_interval_fraction =
        static_cast<double>(single_interval_nodes) / stats.num_nodes;
    stats.tree_depth_avg = static_cast<double>(depth_sum) / stats.num_nodes;
  }
  return stats;
}

}  // namespace trel
