#ifndef TREL_CORE_LATTICE_OPS_H_
#define TREL_CORE_LATTICE_OPS_H_

#include <vector>

#include "core/predecessor_index.h"
#include "graph/digraph.h"

namespace trel {

// Order-theoretic operations over the DAG's reachability partial order,
// backed by the compressed closure.  The paper (Sections 5 and 6) lists
// these as target applications: "we can use these compression techniques
// for the computation of subsumption, disjointness, least common
// ancestors, and other properties in frame-based knowledge representation
// systems", and compares against Ait-Kaci et al.'s lattice encodings.
//
// Conventions: u is an ancestor of v iff u reaches v (reflexively); the
// "least" common ancestors are the minimal elements of the common
// ancestor set under reachability (there can be several in a DAG).
class LatticeOps {
 public:
  explicit LatticeOps(const BidirectionalClosure* closure)
      : closure_(closure) {}

  // Minimal common ancestors of u and v (the DAG generalization of LCA;
  // the "least upper bound" candidates of Ait-Kaci et al. [5]).  If u
  // reaches v, this is {u}.  Sorted by node id.
  std::vector<NodeId> LeastCommonAncestors(NodeId u, NodeId v) const;

  // Maximal common descendants (the "greatest lower bound" candidates).
  std::vector<NodeId> GreatestCommonDescendants(NodeId u, NodeId v) const;

  // True iff u and v have no common descendant — concept disjointness:
  // nothing can be an instance of both.
  bool AreDisjoint(NodeId u, NodeId v) const;

  // True iff u reaches v or v reaches u.
  bool Comparable(NodeId u, NodeId v) const;

 private:
  // Sorted reflexive ancestor/descendant id sets.
  std::vector<NodeId> AncestorsOf(NodeId v) const;
  std::vector<NodeId> DescendantsOf(NodeId v) const;

  const BidirectionalClosure* closure_;
};

}  // namespace trel

#endif  // TREL_CORE_LATTICE_OPS_H_
