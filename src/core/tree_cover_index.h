#ifndef TREL_CORE_TREE_COVER_INDEX_H_
#define TREL_CORE_TREE_COVER_INDEX_H_

#include <cstdint>
#include <vector>

#include "core/arena_kernels.h"
#include "graph/digraph.h"

namespace trel {

// GRAIL-style exact reachability index: k independent random spanning
// forests of the DAG, each labeled with the same postorder-interval trick
// the paper uses for its tree covers (Section 3.1), plus a label-pruned
// DFS for the queries the labels cannot refute.
//
// Each tree t assigns node v a postorder rank r_t(v) and the interval
//   L_t(v) = [min(r_t(v), min over out-neighbors' lo), r_t(v)],
// which contains r_t(w) for every w reachable from v (the min runs over
// ALL out-arcs, not just tree arcs, so non-tree reachability is folded
// in).  Hence r_t(v) not in L_t(u) for ANY t proves u cannot reach v.
// Admitted queries fall back to a DFS over the stored adjacency that
// prunes every branch whose labels reject the target — exact, and on
// sparse graphs the labels kill almost all of the fan-out.
//
// Per-node cost is 8 bytes per tree plus the 4-byte-per-arc adjacency
// copy, independent of the closure's density — which is the whole point:
// on the paper's Fig 3.6 bipartite shapes the interval labeling stores
// Theta(n^2) intervals while this index stays linear.
//
// Immutable after Build; concurrent Reaches calls are safe (the DFS
// scratch is thread-local).
class TreeCoverIndex {
 public:
  // Compact per-tree label: ranks fit int32 (they index [0, n)), halving
  // the footprint of the arena's 16-byte Interval.
  struct TreeLabel {
    int32_t lo = 0;
    int32_t hi = -1;
  };

  static constexpr int kDefaultNumTrees = 2;

  // Builds the index over `graph`, which must be a DAG (callers run this
  // after a successful interval export, which proves acyclicity).
  // `seed` drives the random root and out-neighbor orders that make the
  // k labelings independent.
  static TreeCoverIndex Build(const Digraph& graph,
                              int num_trees = kDefaultNumTrees,
                              uint64_t seed = 1);

  TreeCoverIndex() = default;

  NodeId NumNodes() const { return num_nodes_; }
  int num_trees() const { return num_trees_; }

  // Exact reachability; both ids must be valid.
  bool Reaches(NodeId u, NodeId v) const {
    ProbeTrace trace;
    return ReachesTraced(u, v, &trace);
  }

  // Tagged twin: kSlot for trivial answers, kFilterReject when a tree
  // label refutes the query (extras_probes = trees consulted), kFallback
  // when the pruned DFS ran (extras_probes = nodes expanded).
  bool ReachesTraced(NodeId u, NodeId v, ProbeTrace* trace) const;

  // Index footprint: tree labels plus the pruned-DFS adjacency copy.
  int64_t LabelBytes() const {
    return static_cast<int64_t>(labels_.size() * sizeof(TreeLabel)) +
           static_cast<int64_t>(adj_offset_.size() * sizeof(int64_t)) +
           static_cast<int64_t>(adj_.size() * sizeof(NodeId));
  }

  const TreeLabel& LabelOf(NodeId v, int tree) const {
    return labels_[static_cast<size_t>(v) * num_trees_ + tree];
  }

 private:
  NodeId num_nodes_ = 0;
  int num_trees_ = 0;
  // Node-major: labels_[v * num_trees_ + t].  hi doubles as r_t(v).
  std::vector<TreeLabel> labels_;
  // Frozen CSR out-adjacency for the fallback DFS (the source Digraph is
  // not retained by snapshots).
  std::vector<int64_t> adj_offset_;
  std::vector<NodeId> adj_;

  bool LabelsAdmit(NodeId u, NodeId v) const {
    for (int t = 0; t < num_trees_; ++t) {
      const TreeLabel& lu = LabelOf(u, t);
      const int32_t rv = LabelOf(v, t).hi;
      if (rv < lu.lo || rv > lu.hi) return false;
    }
    return true;
  }
};

}  // namespace trel

#endif  // TREL_CORE_TREE_COVER_INDEX_H_
