#ifndef TREL_BASELINES_CHAIN_COVER_H_
#define TREL_BASELINES_CHAIN_COVER_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "graph/digraph.h"

namespace trel {

// Chain-decomposition closure compression (Jagadish, "A Compressed
// Transitive Closure Technique for Efficient Fixed-Point Query
// Processing", 2nd Int'l Conf. Expert Database Systems, 1988) — the
// related-work comparator of the paper's Theorem 2.
//
// The node set is partitioned into chains, sequences totally ordered by
// reachability.  Each node stores, per chain, the earliest (lowest
// sequence number) member it can reach; all later members of that chain
// are then implied.  Theorem 2: the tree-cover interval compression never
// needs more storage than the best chain compression (without chain
// reduction).
class ChainCover {
 public:
  enum class Method {
    // First-fit over a topological order: append each node to the first
    // chain whose tail reaches it.
    kGreedy,
    // Minimum chain cover (Dilworth): n - max bipartite matching on the
    // closure relation, via Hopcroft–Karp.  Quadratic memory in n; meant
    // for graphs up to a few thousand nodes.
    kMinimum,
  };

  // Fails with FailedPrecondition if `graph` is cyclic.
  static StatusOr<ChainCover> Build(const Digraph& graph,
                                    Method method = Method::kGreedy);

  bool Reaches(NodeId u, NodeId v) const;

  int NumChains() const { return num_chains_; }

  // Number of stored (node, chain) -> first-reachable entries; the
  // storage measure compared against the interval count in Theorem 2.
  int64_t StorageUnits() const { return storage_entries_; }

  int ChainOf(NodeId v) const { return chain_of_[v]; }
  int SeqOf(NodeId v) const { return seq_of_[v]; }

 private:
  ChainCover() = default;

  // Shared tail: given chain assignments, computes first-reachable tables.
  void ComputeReachTables(const Digraph& graph);

  int num_chains_ = 0;
  std::vector<int> chain_of_;
  std::vector<int> seq_of_;
  // first_reach_[v][c] = lowest sequence number in chain c reachable from
  // v, or kNone.
  std::vector<std::vector<int>> first_reach_;
  int64_t storage_entries_ = 0;

  static constexpr int kNone = -1;
};

}  // namespace trel

#endif  // TREL_BASELINES_CHAIN_COVER_H_
