#ifndef TREL_BASELINES_INVERSE_CLOSURE_H_
#define TREL_BASELINES_INVERSE_CLOSURE_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "graph/digraph.h"

namespace trel {

// Inverse closure baseline (paper Section 3.3, Figure 3.10): when the
// closure contains most possible arcs, store the complement instead —
// tuples only for source/destination pairs *consistent with a stored
// topological ordering* between which no path exists.  Reaches(u, v) is
// then "u precedes v in the ordering and (u, v) is not in the inverse
// relation".  The paper notes incremental updates are awkward because the
// topological sort must be maintained; this implementation is static.
class InverseClosure {
 public:
  // Fails with FailedPrecondition if `graph` is cyclic.
  static StatusOr<InverseClosure> Build(const Digraph& graph);

  bool Reaches(NodeId u, NodeId v) const;

  // Number of stored non-reachability tuples, plus one position entry per
  // node for the topological ordering.
  int64_t StorageUnits() const { return num_inverse_pairs_; }
  int64_t NumInversePairs() const { return num_inverse_pairs_; }

 private:
  InverseClosure() = default;

  // position_[v] = rank of v in the stored topological order.
  std::vector<int> position_;
  // inverse_[u] = sorted positions w (> position_[u]) unreachable from u.
  std::vector<std::vector<int>> inverse_;
  int64_t num_inverse_pairs_ = 0;
};

}  // namespace trel

#endif  // TREL_BASELINES_INVERSE_CLOSURE_H_
