#include "baselines/chain_cover.h"

#include <algorithm>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.h"
#include "graph/reachability.h"
#include "graph/topology.h"

namespace trel {
namespace {

// Hopcroft–Karp maximum bipartite matching.  Left and right vertex sets
// are both the node set; adj[u] lists right vertices matchable to u.
// Returns match_right[v] = left partner of v (or -1).
std::vector<int> HopcroftKarp(int n, const std::vector<std::vector<int>>& adj) {
  constexpr int kInf = 1 << 30;
  std::vector<int> match_left(n, -1), match_right(n, -1), dist(n);

  auto bfs = [&]() {
    std::queue<int> queue;
    bool found_augmenting = false;
    for (int u = 0; u < n; ++u) {
      if (match_left[u] == -1) {
        dist[u] = 0;
        queue.push(u);
      } else {
        dist[u] = kInf;
      }
    }
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop();
      for (int v : adj[u]) {
        const int w = match_right[v];
        if (w == -1) {
          found_augmenting = true;
        } else if (dist[w] == kInf) {
          dist[w] = dist[u] + 1;
          queue.push(w);
        }
      }
    }
    return found_augmenting;
  };

  std::function<bool(int)> dfs = [&](int u) {
    for (int v : adj[u]) {
      const int w = match_right[v];
      if (w == -1 || (dist[w] == dist[u] + 1 && dfs(w))) {
        match_left[u] = v;
        match_right[v] = u;
        return true;
      }
    }
    dist[u] = kInf;
    return false;
  };

  while (bfs()) {
    for (int u = 0; u < n; ++u) {
      if (match_left[u] == -1) dfs(u);
    }
  }
  return match_right;
}

}  // namespace

StatusOr<ChainCover> ChainCover::Build(const Digraph& graph, Method method) {
  TREL_ASSIGN_OR_RETURN(std::vector<NodeId> topo, TopologicalOrder(graph));
  const NodeId n = graph.NumNodes();
  ReachabilityMatrix matrix(graph);

  ChainCover cover;
  cover.chain_of_.assign(n, kNone);
  cover.seq_of_.assign(n, kNone);

  if (method == Method::kGreedy) {
    // First-fit decreasing over the topological order; chain_tails[c] is
    // the current last node of chain c.
    std::vector<NodeId> chain_tails;
    std::vector<int> chain_lengths;
    for (NodeId v : topo) {
      int chosen = kNone;
      for (int c = 0; c < static_cast<int>(chain_tails.size()); ++c) {
        if (matrix.Reaches(chain_tails[c], v)) {
          chosen = c;
          break;
        }
      }
      if (chosen == kNone) {
        chosen = static_cast<int>(chain_tails.size());
        chain_tails.push_back(v);
        chain_lengths.push_back(0);
      } else {
        chain_tails[chosen] = v;
      }
      cover.chain_of_[v] = chosen;
      cover.seq_of_[v] = chain_lengths[chosen]++;
    }
    cover.num_chains_ = static_cast<int>(chain_tails.size());
  } else {
    // Dilworth via maximum matching on the strict closure relation.
    std::vector<std::vector<int>> adj(n);
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        if (u != v && matrix.Reaches(u, v)) adj[u].push_back(v);
      }
    }
    std::vector<int> match_right = HopcroftKarp(n, adj);
    // Invert: next_in_chain[u] = matched successor.
    std::vector<int> next(n, kNone);
    std::vector<bool> has_pred(n, false);
    for (int v = 0; v < n; ++v) {
      if (match_right[v] != -1) {
        next[match_right[v]] = v;
        has_pred[v] = true;
      }
    }
    int chains = 0;
    for (int v = 0; v < n; ++v) {
      if (has_pred[v]) continue;
      int seq = 0;
      for (int w = v; w != kNone; w = next[w]) {
        cover.chain_of_[w] = chains;
        cover.seq_of_[w] = seq++;
      }
      ++chains;
    }
    cover.num_chains_ = chains;
  }

  cover.ComputeReachTables(graph);
  return cover;
}

void ChainCover::ComputeReachTables(const Digraph& graph) {
  const NodeId n = graph.NumNodes();
  first_reach_.assign(n, std::vector<int>(num_chains_, kNone));

  auto topo = TopologicalOrder(graph);
  TREL_CHECK(topo.ok());
  const std::vector<NodeId>& order = topo.value();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    auto& row = first_reach_[v];
    row[chain_of_[v]] = seq_of_[v];
    for (NodeId w : graph.OutNeighbors(v)) {
      const auto& succ_row = first_reach_[w];
      for (int c = 0; c < num_chains_; ++c) {
        if (succ_row[c] == kNone) continue;
        if (row[c] == kNone || succ_row[c] < row[c]) row[c] = succ_row[c];
      }
    }
  }

  storage_entries_ = 0;
  for (NodeId v = 0; v < n; ++v) {
    for (int c = 0; c < num_chains_; ++c) {
      if (first_reach_[v][c] != kNone) ++storage_entries_;
    }
  }
}

bool ChainCover::Reaches(NodeId u, NodeId v) const {
  TREL_CHECK_GE(u, 0);
  TREL_CHECK_LT(static_cast<size_t>(u), chain_of_.size());
  TREL_CHECK_GE(v, 0);
  TREL_CHECK_LT(static_cast<size_t>(v), chain_of_.size());
  if (u == v) return true;
  const int entry = first_reach_[u][chain_of_[v]];
  return entry != kNone && entry <= seq_of_[v];
}

}  // namespace trel
