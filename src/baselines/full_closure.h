#ifndef TREL_BASELINES_FULL_CLOSURE_H_
#define TREL_BASELINES_FULL_CLOSURE_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"
#include "graph/reachability.h"

namespace trel {

// Fully materialized transitive closure: the naive baseline the paper
// argues against ("the addition of all transitively derivable
// relationships can increase the number of edges in the graph from O(n)
// to O(n^2)").  Storage is measured in successor-list entries, exactly as
// in the paper's Section 3.3 experiments.
class FullClosure {
 public:
  explicit FullClosure(const Digraph& graph) : matrix_(graph) {}

  bool Reaches(NodeId u, NodeId v) const { return matrix_.Reaches(u, v); }

  std::vector<NodeId> Successors(NodeId u) const {
    return matrix_.Successors(u);
  }

  // Number of (source, destination) tuples in the materialized closure
  // relation — its storage in units of one tuple.
  int64_t StorageUnits() const { return matrix_.NumClosurePairs(); }

 private:
  ReachabilityMatrix matrix_;
};

}  // namespace trel

#endif  // TREL_BASELINES_FULL_CLOSURE_H_
