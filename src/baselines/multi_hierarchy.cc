#include "baselines/multi_hierarchy.h"

#include <utility>

#include "common/check.h"
#include "graph/topology.h"

namespace trel {

StatusOr<MultiHierarchyLabeling> MultiHierarchyLabeling::Build(
    const Digraph& graph) {
  if (!IsAcyclic(graph)) {
    return FailedPreconditionError("graph contains a cycle");
  }
  const NodeId n = graph.NumNodes();

  // Greedy first-fit arc coloring: arc (u, v) joins the first hierarchy
  // where v is still parentless.  The number of hierarchies equals the
  // maximum in-degree.
  std::vector<std::vector<NodeId>> parent_per_hierarchy;  // [h][v].
  for (NodeId v = 0; v < n; ++v) {
    int h = 0;
    for (NodeId u : graph.InNeighbors(v)) {
      if (h == static_cast<int>(parent_per_hierarchy.size())) {
        parent_per_hierarchy.emplace_back(n, kNoNode);
      }
      parent_per_hierarchy[h][v] = u;
      ++h;
    }
  }
  if (parent_per_hierarchy.empty()) {
    parent_per_hierarchy.emplace_back(n, kNoNode);  // Arcless graph.
  }

  MultiHierarchyLabeling result;
  result.num_hierarchies_ = static_cast<int>(parent_per_hierarchy.size());
  result.postorder_.resize(result.num_hierarchies_);
  result.interval_.resize(result.num_hierarchies_);
  result.stored_.resize(result.num_hierarchies_);

  for (int h = 0; h < result.num_hierarchies_; ++h) {
    const auto& parent = parent_per_hierarchy[h];
    std::vector<std::vector<NodeId>> children(n);
    for (NodeId v = 0; v < n; ++v) {
      if (parent[v] != kNoNode) children[parent[v]].push_back(v);
    }
    auto& postorder = result.postorder_[h];
    auto& interval = result.interval_[h];
    auto& stored = result.stored_[h];
    postorder.assign(n, 0);
    interval.assign(n, Interval{0, 0});
    stored.assign(n, false);

    Label next = 0;
    std::vector<std::pair<NodeId, size_t>> stack;
    std::vector<Label> anchor(n, 0);
    for (NodeId root = 0; root < n; ++root) {
      if (parent[root] != kNoNode) continue;
      anchor[root] = next;
      stack.emplace_back(root, 0);
      while (!stack.empty()) {
        auto& [v, child_index] = stack.back();
        if (child_index < children[v].size()) {
          const NodeId child = children[v][child_index++];
          anchor[child] = next;
          stack.emplace_back(child, 0);
        } else {
          ++next;
          postorder[v] = next;
          interval[v] = Interval{anchor[v] + 1, next};
          stored[v] = parent[v] != kNoNode || !children[v].empty();
          if (stored[v]) ++result.stored_intervals_;
          stack.pop_back();
        }
      }
    }
  }
  return result;
}

bool MultiHierarchyLabeling::Reaches(NodeId u, NodeId v) const {
  TREL_CHECK_GE(u, 0);
  TREL_CHECK_GE(v, 0);
  TREL_CHECK_LT(static_cast<size_t>(u), postorder_[0].size());
  TREL_CHECK_LT(static_cast<size_t>(v), postorder_[0].size());
  if (u == v) return true;
  for (int h = 0; h < num_hierarchies_; ++h) {
    if (interval_[h][u].Contains(postorder_[h][v])) return true;
  }
  return false;
}

}  // namespace trel
