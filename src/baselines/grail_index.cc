#include "baselines/grail_index.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "graph/topology.h"

namespace trel {

StatusOr<GrailIndex> GrailIndex::Build(const Digraph& graph, int num_labels,
                                       uint64_t seed) {
  if (num_labels < 1) {
    return InvalidArgumentError("need at least one label");
  }
  TREL_ASSIGN_OR_RETURN(std::vector<NodeId> topo, TopologicalOrder(graph));
  const NodeId n = graph.NumNodes();

  GrailIndex index(&graph, num_labels);
  index.labels_.assign(static_cast<size_t>(num_labels),
                       std::vector<Interval>(n, Interval{0, 0}));
  Random rng(seed);

  for (int round = 0; round < num_labels; ++round) {
    auto& label = index.labels_[static_cast<size_t>(round)];
    // Random-order DFS over the whole graph assigns postorder ranks.
    std::vector<NodeId> roots;
    for (NodeId v = 0; v < n; ++v) {
      if (graph.InDegree(v) == 0) roots.push_back(v);
    }
    for (size_t i = roots.size(); i > 1; --i) {
      std::swap(roots[i - 1], roots[rng.Uniform(i)]);
    }

    std::vector<Label> rank(n, 0);
    std::vector<bool> visited(n, false);
    Label next_rank = 0;
    // Frame: (node, shuffled children, next index).
    struct Frame {
      NodeId node;
      std::vector<NodeId> children;
      size_t next = 0;
    };
    std::vector<Frame> stack;
    auto shuffled_out = [&](NodeId v) {
      std::vector<NodeId> out = graph.OutNeighbors(v);
      for (size_t i = out.size(); i > 1; --i) {
        std::swap(out[i - 1], out[rng.Uniform(i)]);
      }
      return out;
    };
    for (NodeId root : roots) {
      if (visited[root]) continue;
      visited[root] = true;
      stack.push_back({root, shuffled_out(root)});
      while (!stack.empty()) {
        Frame& frame = stack.back();
        if (frame.next < frame.children.size()) {
          const NodeId w = frame.children[frame.next++];
          if (!visited[w]) {
            visited[w] = true;
            stack.push_back({w, shuffled_out(w)});
          }
        } else {
          rank[frame.node] = ++next_rank;
          stack.pop_back();
        }
      }
    }

    // lo(v) = min over everything reachable (including v); propagate in
    // reverse topological order.
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const NodeId v = *it;
      Label lo = rank[v];
      for (NodeId w : graph.OutNeighbors(v)) {
        lo = std::min(lo, label[w].lo);
      }
      label[v] = Interval{lo, rank[v]};
    }
  }
  return index;
}

bool GrailIndex::LabelsAdmit(NodeId u, NodeId v) const {
  for (const auto& label : labels_) {
    if (!label[u].Subsumes(label[v])) return false;
  }
  return true;
}

bool GrailIndex::Reaches(NodeId u, NodeId v) const {
  TREL_CHECK(graph_->IsValidNode(u));
  TREL_CHECK(graph_->IsValidNode(v));
  ++query_stats_.queries;
  if (u == v) {
    ++query_stats_.label_hits;
    return true;
  }
  if (!LabelsAdmit(u, v)) {
    ++query_stats_.label_rejections;
    return false;
  }
  // Label-pruned DFS fallback.
  ++query_stats_.dfs_fallbacks;
  std::vector<bool> visited(static_cast<size_t>(num_nodes_), false);
  std::vector<NodeId> stack = {u};
  visited[u] = true;
  while (!stack.empty()) {
    const NodeId x = stack.back();
    stack.pop_back();
    ++query_stats_.dfs_nodes_visited;
    for (NodeId w : graph_->OutNeighbors(x)) {
      if (w == v) return true;
      if (!visited[w] && LabelsAdmit(w, v)) {
        visited[w] = true;
        stack.push_back(w);
      }
    }
  }
  return false;
}

}  // namespace trel
