#ifndef TREL_BASELINES_GRAIL_INDEX_H_
#define TREL_BASELINES_GRAIL_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "core/interval.h"
#include "graph/digraph.h"

namespace trel {

// GRAIL-style randomized interval labeling (Yildirim, Chaoji, Zaki, VLDB
// 2010) — the best-known descendant of the paper's interval idea, included
// as a forward-looking comparison point.  Where the 1989 scheme stores
// *exact* interval sets (variable count per node), GRAIL stores a fixed
// number k of approximate intervals from random depth-first traversals:
//   - containment failure in any label proves non-reachability;
//   - containment in all labels is inconclusive and falls back to a
//     label-pruned DFS.
// Storage is exactly k intervals per node; the price is fallback
// traversals on "admitted but unreachable" queries, measured in
// bench/tbl_grail_comparison.
class GrailIndex {
 public:
  struct QueryStats {
    int64_t queries = 0;
    int64_t label_rejections = 0;  // Decided negatively by labels alone.
    int64_t label_hits = 0;        // u==v or trivially decided positives.
    int64_t dfs_fallbacks = 0;
    int64_t dfs_nodes_visited = 0;
  };

  // Builds k = `num_labels` randomized labelings.  Fails on cyclic input.
  static StatusOr<GrailIndex> Build(const Digraph& graph, int num_labels,
                                    uint64_t seed);

  // Necessary condition only: false means definitely unreachable; true
  // means "maybe".
  bool LabelsAdmit(NodeId u, NodeId v) const;

  // Exact reachability (label check + pruned DFS fallback).
  bool Reaches(NodeId u, NodeId v) const;

  int NumLabels() const { return num_labels_; }
  // k intervals per node.
  int64_t StorageUnits() const {
    return 2 * static_cast<int64_t>(num_labels_) * num_nodes_;
  }
  const QueryStats& query_stats() const { return query_stats_; }
  void ResetQueryStats() { query_stats_ = QueryStats(); }

 private:
  GrailIndex(const Digraph* graph, int num_labels)
      : graph_(graph),
        num_nodes_(graph->NumNodes()),
        num_labels_(num_labels) {}

  // labels_[i][v] = interval of v in labeling i.
  const Digraph* graph_;  // Not owned; must outlive the index.
  NodeId num_nodes_;
  int num_labels_;
  std::vector<std::vector<Interval>> labels_;
  mutable QueryStats query_stats_;
};

}  // namespace trel

#endif  // TREL_BASELINES_GRAIL_INDEX_H_
