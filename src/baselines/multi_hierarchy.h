#ifndef TREL_BASELINES_MULTI_HIERARCHY_H_
#define TREL_BASELINES_MULTI_HIERARCHY_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "core/interval.h"
#include "graph/digraph.h"

namespace trel {

// Schubert et al.'s overlapping-hierarchies labeling (IEEE Computer 1983;
// the paper's Section 5 related work): the graph is decomposed into
// hierarchies (forests); every node is assigned one tree interval per
// hierarchy, tagged with the hierarchy id.  Reachability holds if the
// containment test passes in *some* hierarchy.
//
// The paper's critique, which this implementation makes measurable:
//  - "the decomposition of a graph into hierarchies is not addressed" —
//    here a greedy first-fit assigns each arc to the first forest where
//    the child is still parentless;
//  - paths that alternate between hierarchies are invisible, so the
//    scheme *under-approximates* reachability on general DAGs (see
//    UndetectedPairs in the bench), while the tree-cover interval scheme
//    is exact;
//  - every node pays an interval in every hierarchy it touches.
class MultiHierarchyLabeling {
 public:
  // Fails with FailedPrecondition on cyclic input.
  static StatusOr<MultiHierarchyLabeling> Build(const Digraph& graph);

  // True iff some hierarchy's interval of u contains v's number in that
  // hierarchy.  Sound but incomplete on DAGs with cross-forest paths.
  bool Reaches(NodeId u, NodeId v) const;

  int NumHierarchies() const { return num_hierarchies_; }

  // Intervals stored: one per (node, hierarchy) pair where the node is
  // non-isolated in that hierarchy, plus one for its home hierarchy.
  int64_t StorageUnits() const { return stored_intervals_; }

 private:
  MultiHierarchyLabeling() = default;

  int num_hierarchies_ = 0;
  // postorder_[h][v], interval_[h][v]; nodes isolated in hierarchy h keep
  // interval [p, p] (self only).
  std::vector<std::vector<Label>> postorder_;
  std::vector<std::vector<Interval>> interval_;
  // stored_[h][v]: whether (v, h) counts toward storage (non-isolated).
  std::vector<std::vector<bool>> stored_;
  int64_t stored_intervals_ = 0;
};

}  // namespace trel

#endif  // TREL_BASELINES_MULTI_HIERARCHY_H_
