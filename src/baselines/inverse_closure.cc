#include "baselines/inverse_closure.h"

#include <algorithm>

#include "common/check.h"
#include "graph/reachability.h"
#include "graph/topology.h"

namespace trel {

StatusOr<InverseClosure> InverseClosure::Build(const Digraph& graph) {
  TREL_ASSIGN_OR_RETURN(std::vector<NodeId> topo, TopologicalOrder(graph));
  const NodeId n = graph.NumNodes();

  InverseClosure result;
  result.position_ = PositionsInOrder(topo, n);

  ReachabilityMatrix matrix(graph);
  result.inverse_.assign(n, {});
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v) continue;
      if (result.position_[u] < result.position_[v] && !matrix.Reaches(u, v)) {
        result.inverse_[u].push_back(result.position_[v]);
        ++result.num_inverse_pairs_;
      }
    }
    std::sort(result.inverse_[u].begin(), result.inverse_[u].end());
  }
  return result;
}

bool InverseClosure::Reaches(NodeId u, NodeId v) const {
  TREL_CHECK_GE(u, 0);
  TREL_CHECK_LT(static_cast<size_t>(u), position_.size());
  TREL_CHECK_GE(v, 0);
  TREL_CHECK_LT(static_cast<size_t>(v), position_.size());
  if (u == v) return true;
  if (position_[u] > position_[v]) return false;
  return !std::binary_search(inverse_[u].begin(), inverse_[u].end(),
                             position_[v]);
}

}  // namespace trel
