#ifndef TREL_KB_TAXONOMY_H_
#define TREL_KB_TAXONOMY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/statusor.h"
#include "core/dynamic_closure.h"
#include "graph/digraph.h"
#include "relational/relation.h"

namespace trel {

// IS-A concept hierarchy backed by the compressed transitive closure — the
// paper's Section 2.1 knowledge-representation application ("CLASSIC ...
// has separated the maintenance of subclass relationships into an abstract
// data type ... We plan to use the techniques presented in this paper for
// this purpose").
//
// Arcs run from the more general concept to the more specific one, so
// Subsumes(a, b) — "every b is an a" — is a single interval lookup.
// Concepts may have multiple parents (a DAG, not a tree).  Properties
// attached to a concept are inherited by all concepts it subsumes.
class Taxonomy {
 public:
  using ConceptId = NodeId;

  explicit Taxonomy(
      const ClosureOptions& options = DynamicClosure::DefaultOptions())
      : closure_(options) {}

  // Adds a concept below the named parents (all must exist; empty =
  // top-level concept).  Fails on duplicate names or unknown parents.
  StatusOr<ConceptId> AddConcept(const std::string& name,
                                 const std::vector<std::string>& parents = {});

  // Adds an extra IS-A link: `child` is also a kind of `parent`.
  Status AddIsA(const std::string& child, const std::string& parent);

  // Section 4.1 hierarchy refinement: interposes a new concept above
  // `child`, below `parents`.  Constant-time when the reserve pool allows.
  StatusOr<ConceptId> RefineAbove(const std::string& name,
                                  const std::string& child,
                                  const std::vector<std::string>& parents);

  // True iff every `descendant` is an `ancestor` (reflexive).  Aborts on
  // unknown names; use Find first for untrusted input.
  bool Subsumes(const std::string& ancestor,
                const std::string& descendant) const;

  // All concepts subsumed by `name` (excluding itself).
  StatusOr<std::vector<std::string>> DescendantsOf(
      const std::string& name) const;
  // All concepts subsuming `name` (excluding itself).
  StatusOr<std::vector<std::string>> AncestorsOf(
      const std::string& name) const;

  // Most specific common subsumers of `a` and `b`.
  StatusOr<std::vector<std::string>> LeastCommonSubsumers(
      const std::string& a, const std::string& b) const;

  // Attaches an inheritable property.
  Status SetProperty(const std::string& concept_name, const std::string& key,
                     const std::string& value);

  // Looks `key` up on the concept, then on its nearest ancestors
  // (breadth-first, ties broken by insertion order).  NotFound if no
  // ancestor defines it.
  StatusOr<std::string> LookupProperty(const std::string& concept_name,
                                       const std::string& key) const;

  StatusOr<ConceptId> Find(const std::string& name) const;
  const std::string& NameOf(ConceptId id) const;
  int64_t NumConcepts() const { return closure_.NumNodes(); }
  const DynamicClosure& closure() const { return closure_; }

  // --- Relational interchange (CSV-friendly; see relational/csv.h) --------

  // concepts(name) in insertion order.
  Relation ConceptsRelation() const;
  // isa(child, parent), one row per direct IS-A arc.
  Relation IsaRelation() const;
  // properties(concept, key, value).
  Relation PropertiesRelation() const;

  // Rebuilds a taxonomy from the three relations above (schemas must
  // match by column name).  Concepts must appear before their parents are
  // referenced; IsaRelation/ConceptsRelation output satisfies this.
  static StatusOr<Taxonomy> FromRelations(
      const Relation& concepts, const Relation& isa,
      const Relation& properties,
      const ClosureOptions& options = DynamicClosure::DefaultOptions());

 private:
  StatusOr<std::vector<ConceptId>> ResolveAll(
      const std::vector<std::string>& names) const;
  Status RegisterName(const std::string& name, ConceptId id);

  DynamicClosure closure_;
  std::unordered_map<std::string, ConceptId> ids_;
  std::vector<std::string> names_;
  // properties_[id] = key -> value.
  std::vector<std::unordered_map<std::string, std::string>> properties_;
};

}  // namespace trel

#endif  // TREL_KB_TAXONOMY_H_
