#include "kb/taxonomy.h"

#include <algorithm>
#include <deque>
#include <utility>

#include "common/check.h"

namespace trel {

StatusOr<std::vector<Taxonomy::ConceptId>> Taxonomy::ResolveAll(
    const std::vector<std::string>& names) const {
  std::vector<ConceptId> ids;
  ids.reserve(names.size());
  for (const std::string& name : names) {
    TREL_ASSIGN_OR_RETURN(ConceptId id, Find(name));
    ids.push_back(id);
  }
  return ids;
}

Status Taxonomy::RegisterName(const std::string& name, ConceptId id) {
  TREL_CHECK_EQ(static_cast<size_t>(id), names_.size());
  ids_[name] = id;
  names_.push_back(name);
  properties_.emplace_back();
  return Status::Ok();
}

StatusOr<Taxonomy::ConceptId> Taxonomy::AddConcept(
    const std::string& name, const std::vector<std::string>& parents) {
  if (name.empty()) return InvalidArgumentError("empty concept name");
  if (ids_.count(name) > 0) {
    return AlreadyExistsError("concept '" + name + "' already exists");
  }
  TREL_ASSIGN_OR_RETURN(std::vector<ConceptId> parent_ids,
                        ResolveAll(parents));

  // First parent becomes the tree parent; the rest are non-tree IS-A arcs.
  TREL_ASSIGN_OR_RETURN(
      ConceptId id,
      closure_.AddLeafUnder(parent_ids.empty() ? kNoNode : parent_ids[0]));
  for (size_t k = 1; k < parent_ids.size(); ++k) {
    Status s = closure_.AddArc(parent_ids[k], id);
    if (!s.ok() && s.code() != StatusCode::kAlreadyExists) return s;
  }
  TREL_RETURN_IF_ERROR(RegisterName(name, id));
  return id;
}

Status Taxonomy::AddIsA(const std::string& child, const std::string& parent) {
  TREL_ASSIGN_OR_RETURN(ConceptId child_id, Find(child));
  TREL_ASSIGN_OR_RETURN(ConceptId parent_id, Find(parent));
  return closure_.AddArc(parent_id, child_id);
}

StatusOr<Taxonomy::ConceptId> Taxonomy::RefineAbove(
    const std::string& name, const std::string& child,
    const std::vector<std::string>& parents) {
  if (ids_.count(name) > 0) {
    return AlreadyExistsError("concept '" + name + "' already exists");
  }
  TREL_ASSIGN_OR_RETURN(ConceptId child_id, Find(child));
  TREL_ASSIGN_OR_RETURN(std::vector<ConceptId> parent_ids,
                        ResolveAll(parents));
  TREL_ASSIGN_OR_RETURN(ConceptId id,
                        closure_.RefineAbove(child_id, parent_ids));
  TREL_RETURN_IF_ERROR(RegisterName(name, id));
  return id;
}

bool Taxonomy::Subsumes(const std::string& ancestor,
                        const std::string& descendant) const {
  auto a = Find(ancestor);
  auto d = Find(descendant);
  TREL_CHECK(a.ok()) << "unknown concept" << ancestor;
  TREL_CHECK(d.ok()) << "unknown concept" << descendant;
  return closure_.Reaches(a.value(), d.value());
}

StatusOr<std::vector<std::string>> Taxonomy::DescendantsOf(
    const std::string& name) const {
  TREL_ASSIGN_OR_RETURN(ConceptId id, Find(name));
  std::vector<std::string> result;
  for (ConceptId d : closure_.Successors(id)) result.push_back(names_[d]);
  return result;
}

StatusOr<std::vector<std::string>> Taxonomy::AncestorsOf(
    const std::string& name) const {
  TREL_ASSIGN_OR_RETURN(ConceptId id, Find(name));
  // Walk up the IS-A arcs; the set is typically small.
  std::vector<bool> seen(closure_.NumNodes(), false);
  std::deque<ConceptId> queue = {id};
  seen[id] = true;
  std::vector<std::string> result;
  while (!queue.empty()) {
    const ConceptId v = queue.front();
    queue.pop_front();
    for (ConceptId p : closure_.graph().InNeighbors(v)) {
      if (!seen[p]) {
        seen[p] = true;
        result.push_back(names_[p]);
        queue.push_back(p);
      }
    }
  }
  return result;
}

StatusOr<std::vector<std::string>> Taxonomy::LeastCommonSubsumers(
    const std::string& a, const std::string& b) const {
  TREL_ASSIGN_OR_RETURN(ConceptId ida, Find(a));
  TREL_ASSIGN_OR_RETURN(ConceptId idb, Find(b));
  std::vector<ConceptId> common;
  for (ConceptId c = 0; c < closure_.NumNodes(); ++c) {
    if (closure_.Reaches(c, ida) && closure_.Reaches(c, idb)) {
      common.push_back(c);
    }
  }
  // Keep the minimal (most specific) elements: c is dropped if some other
  // common subsumer is strictly below it.
  std::vector<std::string> result;
  for (ConceptId c : common) {
    bool minimal = true;
    for (ConceptId d : common) {
      if (c != d && closure_.Reaches(c, d)) {
        minimal = false;
        break;
      }
    }
    if (minimal) result.push_back(names_[c]);
  }
  return result;
}

Status Taxonomy::SetProperty(const std::string& concept_name,
                             const std::string& key,
                             const std::string& value) {
  TREL_ASSIGN_OR_RETURN(ConceptId id, Find(concept_name));
  properties_[id][key] = value;
  return Status::Ok();
}

StatusOr<std::string> Taxonomy::LookupProperty(
    const std::string& concept_name, const std::string& key) const {
  TREL_ASSIGN_OR_RETURN(ConceptId id, Find(concept_name));
  // Breadth-first up the IS-A arcs: the nearest definition wins, with ties
  // broken by discovery order.
  std::vector<bool> seen(closure_.NumNodes(), false);
  std::deque<ConceptId> queue = {id};
  seen[id] = true;
  while (!queue.empty()) {
    const ConceptId v = queue.front();
    queue.pop_front();
    auto it = properties_[v].find(key);
    if (it != properties_[v].end()) return it->second;
    for (ConceptId p : closure_.graph().InNeighbors(v)) {
      if (!seen[p]) {
        seen[p] = true;
        queue.push_back(p);
      }
    }
  }
  return NotFoundError("property '" + key + "' not defined on '" +
                       concept_name + "' or its ancestors");
}

StatusOr<Taxonomy::ConceptId> Taxonomy::Find(const std::string& name) const {
  auto it = ids_.find(name);
  if (it == ids_.end()) {
    return NotFoundError("unknown concept '" + name + "'");
  }
  return it->second;
}

const std::string& Taxonomy::NameOf(ConceptId id) const {
  TREL_CHECK_GE(id, 0);
  TREL_CHECK_LT(static_cast<size_t>(id), names_.size());
  return names_[id];
}


Relation Taxonomy::ConceptsRelation() const {
  Relation relation({{"name", ColumnType::kString}});
  for (const std::string& name : names_) {
    TREL_CHECK(relation.Append({name}).ok());
  }
  return relation;
}

Relation Taxonomy::IsaRelation() const {
  Relation relation({{"child", ColumnType::kString},
                     {"parent", ColumnType::kString}});
  for (const auto& [parent, child] : closure_.graph().Arcs()) {
    TREL_CHECK(relation.Append({names_[child], names_[parent]}).ok());
  }
  return relation;
}

Relation Taxonomy::PropertiesRelation() const {
  Relation relation({{"concept", ColumnType::kString},
                     {"key", ColumnType::kString},
                     {"value", ColumnType::kString}});
  for (size_t id = 0; id < properties_.size(); ++id) {
    for (const auto& [key, value] : properties_[id]) {
      TREL_CHECK(relation.Append({names_[id], key, value}).ok());
    }
  }
  return relation;
}

StatusOr<Taxonomy> Taxonomy::FromRelations(const Relation& concepts,
                                           const Relation& isa,
                                           const Relation& properties,
                                           const ClosureOptions& options) {
  Taxonomy taxonomy(options);
  TREL_ASSIGN_OR_RETURN(int name_col, concepts.ColumnIndex("name"));
  for (const Tuple& tuple : concepts.tuples()) {
    if (!std::holds_alternative<std::string>(tuple[name_col])) {
      return InvalidArgumentError("concept names must be strings");
    }
    TREL_ASSIGN_OR_RETURN(
        ConceptId id,
        taxonomy.AddConcept(std::get<std::string>(tuple[name_col])));
    (void)id;
  }
  TREL_ASSIGN_OR_RETURN(int child_col, isa.ColumnIndex("child"));
  TREL_ASSIGN_OR_RETURN(int parent_col, isa.ColumnIndex("parent"));
  for (const Tuple& tuple : isa.tuples()) {
    if (!std::holds_alternative<std::string>(tuple[child_col]) ||
        !std::holds_alternative<std::string>(tuple[parent_col])) {
      return InvalidArgumentError("isa endpoints must be strings");
    }
    TREL_RETURN_IF_ERROR(
        taxonomy.AddIsA(std::get<std::string>(tuple[child_col]),
                        std::get<std::string>(tuple[parent_col])));
  }
  TREL_ASSIGN_OR_RETURN(int concept_col, properties.ColumnIndex("concept"));
  TREL_ASSIGN_OR_RETURN(int key_col, properties.ColumnIndex("key"));
  TREL_ASSIGN_OR_RETURN(int value_col, properties.ColumnIndex("value"));
  for (const Tuple& tuple : properties.tuples()) {
    for (int col : {concept_col, key_col, value_col}) {
      if (!std::holds_alternative<std::string>(tuple[col])) {
        return InvalidArgumentError("property fields must be strings");
      }
    }
    TREL_RETURN_IF_ERROR(
        taxonomy.SetProperty(std::get<std::string>(tuple[concept_col]),
                             std::get<std::string>(tuple[key_col]),
                             std::get<std::string>(tuple[value_col])));
  }
  // All concepts were inserted as roots and linked by non-tree arcs;
  // re-derive the optimal cover for compact labels.
  taxonomy.closure_.Reoptimize();
  return taxonomy;
}

}  // namespace trel
