#ifndef TREL_SERVICE_METRICS_H_
#define TREL_SERVICE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "core/arena_kernels.h"
#include "core/index_family.h"
#include "obs/span_log.h"

namespace trel {

// Thread-safe counters for the query service.  All writes are relaxed
// atomic increments — metrics never order anything, they only have to be
// race-free and cheap enough to sit on the hot read path.
class ServiceMetrics {
 public:
  // Batch latency histogram: bucket i counts batches that finished in
  // [2^i, 2^(i+1)) microseconds (bucket 0 additionally catches < 1us,
  // the last bucket everything slower).
  static constexpr int kLatencyBuckets = 22;
  // Delta-size histogram: bucket i counts delta publishes that shipped
  // [2^i, 2^(i+1)) changed node entries (bucket 0 additionally catches
  // empty deltas, the last bucket everything larger).
  static constexpr int kDeltaNodeBuckets = 24;

  // Plain-value copy of the counters, safe to read field by field.
  struct View {
    int64_t reach_queries = 0;
    int64_t successor_queries = 0;
    int64_t batches = 0;
    int64_t batch_micros_total = 0;
    // Batches refused by admission control (TryBatchReaches /
    // TryBatchSuccessors with ServiceOptions::max_inflight_batches set).
    int64_t batches_rejected = 0;
    // Publishes split by strategy; `publishes` is their sum and the
    // legacy full counters are the chain_full + optimal_full sums.
    int64_t publishes = 0;
    int64_t publishes_full = 0;
    int64_t publishes_delta = 0;
    int64_t publishes_chain_full = 0;
    int64_t publishes_optimal_full = 0;
    int64_t publish_micros_total = 0;
    int64_t publish_full_micros_total = 0;
    int64_t publish_delta_micros_total = 0;
    int64_t publish_chain_full_micros_total = 0;
    int64_t publish_optimal_full_micros_total = 0;
    // Changed-node entries shipped across all delta publishes.
    int64_t delta_nodes_total = 0;
    std::array<int64_t, kLatencyBuckets> batch_latency_histogram{};
    std::array<int64_t, kDeltaNodeBuckets> delta_nodes_histogram{};
    // Batch-kernel outcome counters (see BatchKernelStats): how many
    // batched lookups were decided by slots alone, killed by a one-bit
    // or whole-group coverage-filter test, or searched an extras run.
    int64_t batch_fast_path = 0;
    int64_t batch_filter_rejects = 0;
    int64_t batch_group_rejects = 0;
    int64_t batch_extras_searches = 0;
    // Filled in by QueryService::Metrics() from the live snapshot.
    uint64_t current_epoch = 0;
    // Batches executing right now (gauge; filled by QueryService).
    int64_t inflight_batches = 0;
    double snapshot_age_seconds = 0.0;
    int64_t snapshot_total_intervals = 0;
    int64_t snapshot_num_nodes = 0;
    int64_t snapshot_overlay_nodes = 0;
    // Bytes pinned by the snapshot's flat query arena (shared across
    // delta snapshots, so overlay epochs report their base's arena).
    int64_t snapshot_arena_bytes = 0;
    // Dispatched arena-kernel ISA tier (gauge): numeric SimdLevel plus
    // its name ("scalar"/"sse"/"avx2").  Process-wide, resolved once at
    // startup — see core/simd_dispatch.h.
    int simd_level = 0;
    std::string simd_level_name = "scalar";
    // Index family serving the live snapshot (gauge; filled by
    // QueryService) plus the selected family's label footprint.
    int index_family = 0;
    std::string index_family_name = "intervals";
    int64_t family_label_bytes = 0;
    // How many full publishes selected each family since startup,
    // indexed by IndexFamily.
    std::array<int64_t, kNumIndexFamilies> family_selects{};
    // Strategy of the most recent publish ("none" before the first).
    std::string last_publish_strategy = "none";
    // Snapshot interval totals observed at the most recent full publish
    // of each kind, and their ratio (chain / optimal) — the interval
    // blowup the chain-fast tier trades for build speed.  0 until both
    // kinds have published at least once.
    int64_t chain_full_intervals_last = 0;
    int64_t optimal_full_intervals_last = 0;
    double chain_interval_blowup = 0.0;

    std::string ToString() const;
  };

  void RecordReachQueries(int64_t n) {
    reach_queries_.fetch_add(n, std::memory_order_relaxed);
  }
  void RecordSuccessorQueries(int64_t n) {
    successor_queries_.fetch_add(n, std::memory_order_relaxed);
  }
  // One batch that served `queries` lookups in `micros` wall microseconds.
  void RecordBatch(int64_t micros);
  // One batch refused by admission control (never executed).
  void RecordBatchRejected() {
    batches_rejected_.fetch_add(1, std::memory_order_relaxed);
  }
  // One publish that re-exported the entire labeling.  `strategy` says
  // which full tier built it (kDelta is invalid here);
  // `total_intervals` is the published snapshot's interval count, kept
  // per tier so the chain-vs-optimal blowup ratio is observable.
  void RecordPublishFull(PublishStrategy strategy, int64_t micros,
                         int64_t total_intervals);
  // One publish that shipped `delta_nodes` changed entries as an overlay.
  void RecordPublishDelta(int64_t micros, int64_t delta_nodes);
  // Folds one batch invocation's kernel tallies in (four relaxed adds —
  // the kernel itself counts in plain locals).
  void RecordBatchKernel(const BatchKernelStats& stats);
  // One full publish that selected `family` for the new snapshot.
  void RecordFamilySelect(IndexFamily family) {
    family_selects_[static_cast<int>(family)].fetch_add(
        1, std::memory_order_relaxed);
  }

  View Read() const;

 private:
  std::atomic<int64_t> reach_queries_{0};
  std::atomic<int64_t> successor_queries_{0};
  std::atomic<int64_t> batches_{0};
  std::atomic<int64_t> batch_micros_total_{0};
  std::atomic<int64_t> batches_rejected_{0};
  std::atomic<int64_t> publishes_chain_full_{0};
  std::atomic<int64_t> publishes_optimal_full_{0};
  std::atomic<int64_t> publishes_delta_{0};
  std::atomic<int64_t> publish_chain_full_micros_total_{0};
  std::atomic<int64_t> publish_optimal_full_micros_total_{0};
  std::atomic<int64_t> publish_delta_micros_total_{0};
  std::atomic<int64_t> delta_nodes_total_{0};
  // PublishStrategy value of the latest publish; -1 before the first.
  std::atomic<int> last_publish_strategy_{-1};
  std::atomic<int64_t> chain_full_intervals_last_{0};
  std::atomic<int64_t> optimal_full_intervals_last_{0};
  std::array<std::atomic<int64_t>, kLatencyBuckets> histogram_{};
  std::array<std::atomic<int64_t>, kDeltaNodeBuckets> delta_histogram_{};
  std::atomic<int64_t> batch_fast_path_{0};
  std::atomic<int64_t> batch_filter_rejects_{0};
  std::atomic<int64_t> batch_group_rejects_{0};
  std::atomic<int64_t> batch_extras_searches_{0};
  std::array<std::atomic<int64_t>, kNumIndexFamilies> family_selects_{};
};

}  // namespace trel

#endif  // TREL_SERVICE_METRICS_H_
