#include "service/snapshot.h"

namespace trel {
namespace {

// Folds one family-path probe outcome into the batch tallies the metrics
// layer already exposes.  Hop intersects are the family's "decided from
// the labels alone" case, so they land in fast_path next to the arena's
// slot hits; pruned-DFS and residual probes are its extras searches.
void FoldTag(ProbeTag tag, BatchKernelStats* stats) {
  if (stats == nullptr) return;
  switch (tag) {
    case ProbeTag::kSlot:
    case ProbeTag::kOverlay:
    case ProbeTag::kHopIntersect:
      ++stats->fast_path;
      break;
    case ProbeTag::kFilterReject:
      ++stats->filter_rejects;
      break;
    case ProbeTag::kGroupReject:
      ++stats->group_rejects;
      break;
    case ProbeTag::kExtrasSearch:
    case ProbeTag::kFallback:
      ++stats->extras_searches;
      break;
  }
}

}  // namespace

bool ClosureSnapshot::ReachesTraced(NodeId u, NodeId v,
                                    ProbeTrace* trace) const {
  if (!closure.IsValidNode(u) || !closure.IsValidNode(v)) {
    trace->tag = ProbeTag::kSlot;
    trace->extras_probes = 0;
    return false;
  }
  if (UsesFamily(u, v)) {
    return family == IndexFamily::kTrees ? tree_index->ReachesTraced(u, v,
                                                                     trace)
                                         : hop_index->ReachesTraced(u, v,
                                                                    trace);
  }
  return closure.ReachesTraced(u, v, trace);
}

void ClosureSnapshot::BatchReaches(const std::pair<NodeId, NodeId>* pairs,
                                   int64_t n, uint8_t* out,
                                   BatchKernelStats* stats) const {
  if (family == IndexFamily::kIntervals) {
    closure.BatchReaches(pairs, n, out, stats);
    return;
  }
  ProbeTrace trace;
  for (int64_t i = 0; i < n; ++i) {
    out[i] = ReachesTraced(pairs[i].first, pairs[i].second, &trace) ? 1 : 0;
    FoldTag(trace.tag, stats);
  }
}

void ClosureSnapshot::BatchReachesTraced(const std::pair<NodeId, NodeId>* pairs,
                                         int64_t n, uint8_t* out,
                                         BatchKernelStats* stats,
                                         uint8_t* tags) const {
  if (family == IndexFamily::kIntervals) {
    closure.BatchReachesTraced(pairs, n, out, stats, tags);
    return;
  }
  ProbeTrace trace;
  for (int64_t i = 0; i < n; ++i) {
    out[i] = ReachesTraced(pairs[i].first, pairs[i].second, &trace) ? 1 : 0;
    tags[i] = static_cast<uint8_t>(trace.tag);
    FoldTag(trace.tag, stats);
  }
}

}  // namespace trel
