#include "service/sharded_service.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "graph/topology.h"

namespace trel {

namespace {

int WordsFor(int64_t bits) { return static_cast<int>((bits + 63) / 64); }

inline bool RowsIntersect(const uint64_t* a, const uint64_t* b, int words) {
  for (int i = 0; i < words; ++i) {
    if (a[i] & b[i]) return true;
  }
  return false;
}

// Upper bound on trace records emitted per sampled batch (mirrors the
// monolithic service).
constexpr int64_t kMaxBatchTraceRecords = 32;

// Rollup series layout for the sharded front end: the five pipeline
// stages first (indexed by QueryStage), then the end-to-end series,
// then one series per shard (see ShardedQueryService::rollup()).
constexpr int kRollupSingleSeries = kNumQueryStages;
constexpr int kRollupBatchSeries = kNumQueryStages + 1;
constexpr int kRollupShardBase = kNumQueryStages + 2;

std::vector<std::string> RollupSeriesNames(int num_shards) {
  std::vector<std::string> names;
  names.reserve(kRollupShardBase + num_shards);
  for (int s = 0; s < kNumQueryStages; ++s) {
    names.emplace_back(QueryStageName(static_cast<QueryStage>(s)));
  }
  names.emplace_back("single");
  names.emplace_back("batch");
  for (int s = 0; s < num_shards; ++s) {
    names.push_back("shard" + std::to_string(s));
  }
  return names;
}

}  // namespace

std::string ShardedMetricsView::ToString() const {
  return "shards=" + std::to_string(num_shards) +
         " epoch=" + std::to_string(epoch) +
         " nodes=" + std::to_string(num_nodes) +
         " hubs=" + std::to_string(num_hubs) +
         " boundary_label_bytes=" + std::to_string(boundary_label_bytes) +
         " cross_shard_queries=" + std::to_string(cross_shard_queries) +
         " hub_hop_queries=" + std::to_string(hub_hop_queries) +
         " boundary_republishes=" + std::to_string(boundary_republishes) +
         " boundary_skips=" + std::to_string(boundary_skips) +
         " hub_promotions=" + std::to_string(hub_promotions);
}

// --- AppendArray -----------------------------------------------------------

void ShardedQueryService::AppendArray::Reset() {
  chunks_.clear();
  size_ = 0;
}

void ShardedQueryService::AppendArray::Append(int32_t value) {
  const int64_t c = size_ / kRowsPerChunk;
  if (c == static_cast<int64_t>(chunks_.size())) {
    auto chunk = std::make_shared<RoutingChunk>();
    chunk->data.assign(kRowsPerChunk, 0);
    chunks_.push_back(std::move(chunk));
  }
  chunks_[c]->data[size_ % kRowsPerChunk] = value;
  ++size_;
}

int32_t ShardedQueryService::AppendArray::At(int64_t i) const {
  return chunks_[i / kRowsPerChunk]->data[i % kRowsPerChunk];
}

// --- HubBits ---------------------------------------------------------------

void ShardedQueryService::HubBits::Reset(int words_per_row) {
  words_ = words_per_row;
  rows_ = 0;
  chunks_.clear();
  shared_.clear();
  dirty_ = true;
}

void ShardedQueryService::HubBits::AppendRow(const uint64_t* src) {
  const int64_t c = rows_ / kRowsPerChunk;
  if (c == static_cast<int64_t>(chunks_.size())) {
    auto chunk = std::make_shared<BitsChunk>();
    chunk->words.assign(static_cast<size_t>(kRowsPerChunk) * words_, 0);
    chunks_.push_back(std::move(chunk));
    shared_.push_back(0);
  }
  if (words_ > 0) {
    uint64_t* dst =
        chunks_[c]->words.data() + (rows_ % kRowsPerChunk) * words_;
    if (src != nullptr) {
      std::memcpy(dst, src, static_cast<size_t>(words_) * sizeof(uint64_t));
    } else {
      std::memset(dst, 0, static_cast<size_t>(words_) * sizeof(uint64_t));
    }
  }
  ++rows_;
}

const uint64_t* ShardedQueryService::HubBits::Row(int64_t r) const {
  return chunks_[r / kRowsPerChunk]->words.data() +
         (r % kRowsPerChunk) * words_;
}

uint64_t* ShardedQueryService::HubBits::MutableRow(int64_t r) {
  const int64_t c = r / kRowsPerChunk;
  if (shared_[c]) {
    // The chunk is referenced by a published snapshot: clone before the
    // first post-publish write so readers keep an immutable view.
    chunks_[c] = std::make_shared<BitsChunk>(*chunks_[c]);
    shared_[c] = 0;
  }
  dirty_ = true;
  return chunks_[c]->words.data() + (r % kRowsPerChunk) * words_;
}

void ShardedQueryService::HubBits::GrowWords(int new_words) {
  TREL_CHECK_GT(new_words, words_);
  std::vector<std::shared_ptr<BitsChunk>> old = std::move(chunks_);
  const int old_words = words_;
  words_ = new_words;
  chunks_.clear();
  chunks_.reserve(old.size());
  for (size_t c = 0; c < old.size(); ++c) {
    auto chunk = std::make_shared<BitsChunk>();
    chunk->words.assign(static_cast<size_t>(kRowsPerChunk) * words_, 0);
    const int64_t base = static_cast<int64_t>(c) * kRowsPerChunk;
    const int64_t limit = std::min<int64_t>(kRowsPerChunk, rows_ - base);
    for (int64_t r = 0; r < limit; ++r) {
      std::memcpy(chunk->words.data() + r * words_,
                  old[c]->words.data() + r * old_words,
                  static_cast<size_t>(old_words) * sizeof(uint64_t));
    }
    chunks_.push_back(std::move(chunk));
  }
  shared_.assign(chunks_.size(), 0);
  dirty_ = true;
}

void ShardedQueryService::HubBits::MarkAllShared() {
  shared_.assign(chunks_.size(), 1);
}

// --- BoundarySnapshot ------------------------------------------------------

const uint64_t* ShardedQueryService::BoundarySnapshot::OutRow(
    int64_t r) const {
  return out_chunks[r / kRowsPerChunk]->words.data() +
         (r % kRowsPerChunk) * words;
}

const uint64_t* ShardedQueryService::BoundarySnapshot::InRow(int64_t r) const {
  return in_chunks[r / kRowsPerChunk]->words.data() +
         (r % kRowsPerChunk) * words;
}

int32_t ShardedQueryService::BoundarySnapshot::ShardOfAt(int64_t r) const {
  return shard_chunks[r / kRowsPerChunk]->data[r % kRowsPerChunk];
}

int32_t ShardedQueryService::BoundarySnapshot::LocalIdAt(int64_t r) const {
  return local_chunks[r / kRowsPerChunk]->data[r % kRowsPerChunk];
}

int ShardedQueryService::BoundarySnapshot::HubBit(NodeId node) const {
  const auto it = std::lower_bound(
      hub_bits_sorted.begin(), hub_bits_sorted.end(),
      std::make_pair(node, static_cast<int32_t>(-1)));
  if (it == hub_bits_sorted.end() || it->first != node) return -1;
  return it->second;
}

// --- ShardedQueryService ---------------------------------------------------

ShardedQueryService::ShardedQueryService(const ShardedServiceOptions& options)
    : options_(options),
      tracer_(options.trace_ring_capacity),
      slow_log_(options.slow_log_capacity),
      rollup_(RollupSeriesNames(options.num_shards)),
      flight_(options.flight) {
  TREL_CHECK_GE(options_.num_shards, 1);
  const uint32_t env_period = QueryTracer::PeriodFromEnv();
  tracer_.SetSamplePeriod(env_period != 0 ? env_period
                                          : options_.trace_sample_period);
  flight_.Attach(&rollup_, [this](FlightCapture* capture) {
    capture->traces = tracer_.Drain();
    // The front end has no publish pipeline of its own; the capture
    // carries every shard's recent spans instead (epochs disambiguate).
    for (const auto& shard : shards_) {
      const std::vector<PublishSpan> spans = shard->span_log().Recent();
      capture->spans.insert(capture->spans.end(), spans.begin(), spans.end());
    }
    capture->slow = slow_log_.Recent();
    capture->metrics = MetricsView().ToString();
  });
  shards_.reserve(options_.num_shards);
  for (int s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<QueryService>(options_.shard));
  }
  std::lock_guard<std::mutex> lock(boundary_mutex_);
  out_bits_.Reset(0);
  in_bits_.Reset(0);
  PublishBoundaryLocked();  // Empty snapshot at epoch 0.
}

ShardedQueryService::~ShardedQueryService() = default;

Status ShardedQueryService::Load(const Digraph& graph) {
  PartitionOptions popts = options_.partition;
  popts.num_shards = num_shards();
  StatusOr<Partition> part = PartitionDag(graph, popts);
  TREL_RETURN_IF_ERROR(part.status());

  // Local ids within a shard follow ascending global id, so a replayed
  // update stream produces the same local sequences deterministically.
  const NodeId n = graph.NumNodes();
  const int k = num_shards();
  std::vector<NodeId> local(n);
  std::vector<NodeId> counts(k, 0);
  for (NodeId v = 0; v < n; ++v) local[v] = counts[part->shard_of[v]]++;
  std::vector<Digraph> subs;
  subs.reserve(k);
  for (int s = 0; s < k; ++s) subs.emplace_back(counts[s]);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : graph.OutNeighbors(u)) {
      if (part->shard_of[u] == part->shard_of[v]) {
        TREL_CHECK(subs[part->shard_of[u]].AddArc(local[u], local[v]).ok());
      }
    }
  }
  for (int s = 0; s < k; ++s) {
    TREL_RETURN_IF_ERROR(shards_[s]->Load(subs[s]));
  }

  std::lock_guard<std::mutex> lock(boundary_mutex_);
  mirror_ = graph;
  shard_of_.Reset();
  local_id_.Reset();
  for (NodeId v = 0; v < n; ++v) {
    shard_of_.Append(part->shard_of[v]);
    local_id_.Append(local[v]);
  }
  is_hub_.assign(n, 0);
  hub_bit_of_.assign(n, -1);
  hub_at_bit_.clear();
  for (NodeId h : part->hubs) {
    hub_bit_of_[h] = static_cast<int32_t>(hub_at_bit_.size());
    is_hub_[h] = 1;
    hub_at_bit_.push_back(h);
  }
  RebuildBitsLocked();
  // A fresh load is a new lineage: force a full boundary republish.
  published_nodes_ = -1;
  published_words_ = -1;
  published_hubs_ = -1;
  epoch_.fetch_add(1, std::memory_order_relaxed);
  PublishBoundaryLocked();
  return Status::Ok();
}

StatusOr<NodeId> ShardedQueryService::AddLeafUnder(NodeId parent) {
  int s = 0;
  NodeId local_parent = kNoNode;
  {
    std::lock_guard<std::mutex> lock(boundary_mutex_);
    if (parent != kNoNode && !mirror_.IsValidNode(parent)) {
      return InvalidArgumentError("invalid parent " + std::to_string(parent));
    }
    if (parent != kNoNode) {
      s = shard_of_.At(parent);
      local_parent = local_id_.At(parent);
    }
  }
  NodeId global = kNoNode;
  const Status status = shards_[s]->Apply([&](DynamicClosure& dyn) {
    StatusOr<NodeId> lp = dyn.AddLeafUnder(local_parent);
    TREL_CHECK(lp.ok()) << lp.status().ToString();
    std::lock_guard<std::mutex> lock(boundary_mutex_);
    global = mirror_.AddNode();
    if (parent != kNoNode) {
      TREL_CHECK(mirror_.AddArc(parent, global).ok());
    }
    shard_of_.Append(s);
    local_id_.Append(*lp);
    is_hub_.push_back(0);
    hub_bit_of_.push_back(-1);
    AppendLeafBitsLocked(parent);
    return Status::Ok();
  });
  TREL_RETURN_IF_ERROR(status);
  return global;
}

Status ShardedQueryService::AddArc(NodeId from, NodeId to) {
  int sf = 0;
  int st = 0;
  NodeId lf = kNoNode;
  NodeId lt = kNoNode;
  {
    std::lock_guard<std::mutex> lock(boundary_mutex_);
    if (!mirror_.IsValidNode(from) || !mirror_.IsValidNode(to)) {
      return InvalidArgumentError("invalid arc endpoint");
    }
    sf = shard_of_.At(from);
    st = shard_of_.At(to);
    lf = local_id_.At(from);
    lt = local_id_.At(to);
  }
  const auto cycle_error = [from, to] {
    return InvalidArgumentError("arc (" + std::to_string(from) + "," +
                                std::to_string(to) +
                                ") would create a cycle");
  };
  if (sf == st) {
    // Same-shard arc: shard writer mutex first (via Apply), boundary
    // second.  The cycle check is GLOBAL — a path back from `to` to
    // `from` may leave the shard and return through hubs — so it runs
    // under the boundary lock against the working bitsets plus the live
    // shard closure, atomically with the mutation.
    return shards_[sf]->Apply([&](DynamicClosure& dyn) {
      std::lock_guard<std::mutex> lock(boundary_mutex_);
      if (from == to || ReachesGloballyLocked(to, from, &dyn)) {
        return cycle_error();
      }
      if (mirror_.HasArc(from, to)) {
        return AlreadyExistsError("arc (" + std::to_string(from) + "," +
                                  std::to_string(to) + ") already exists");
      }
      TREL_CHECK(dyn.AddArc(lf, lt).ok());
      TREL_CHECK(mirror_.AddArc(from, to).ok());
      ApplyArcBitsLocked(from, to);
      return Status::Ok();
    });
  }
  // Cross-shard arc: never enters a shard closure; lives in the mirror
  // and the boundary bitsets only.  The hub-cover invariant is restored
  // by promoting an endpoint when neither is a hub yet.
  std::lock_guard<std::mutex> lock(boundary_mutex_);
  if (from == to || ReachesGloballyLocked(to, from, nullptr)) {
    return cycle_error();
  }
  TREL_RETURN_IF_ERROR(mirror_.AddArc(from, to));  // AlreadyExists on dups.
  if (!is_hub_[from] && !is_hub_[to]) {
    const int df = mirror_.OutDegree(from) + mirror_.InDegree(from);
    const int dt = mirror_.OutDegree(to) + mirror_.InDegree(to);
    PromoteHubLocked(df > dt || (df == dt && from < to) ? from : to);
  }
  ApplyArcBitsLocked(from, to);
  return Status::Ok();
}

Status ShardedQueryService::RemoveArc(NodeId from, NodeId to) {
  int sf = 0;
  int st = 0;
  NodeId lf = kNoNode;
  NodeId lt = kNoNode;
  {
    std::lock_guard<std::mutex> lock(boundary_mutex_);
    if (!mirror_.IsValidNode(from) || !mirror_.IsValidNode(to)) {
      return InvalidArgumentError("invalid arc endpoint");
    }
    if (!mirror_.HasArc(from, to)) {
      return NotFoundError("arc (" + std::to_string(from) + "," +
                           std::to_string(to) + ") not in graph");
    }
    sf = shard_of_.At(from);
    st = shard_of_.At(to);
    lf = local_id_.At(from);
    lt = local_id_.At(to);
  }
  if (sf == st) {
    return shards_[sf]->Apply([&](DynamicClosure& dyn) {
      std::lock_guard<std::mutex> lock(boundary_mutex_);
      if (!mirror_.HasArc(from, to)) {  // Lost a race to a removal.
        return NotFoundError("arc (" + std::to_string(from) + "," +
                             std::to_string(to) + ") not in graph");
      }
      TREL_CHECK(dyn.RemoveArc(lf, lt).ok());
      TREL_CHECK(mirror_.RemoveArc(from, to).ok());
      RebuildBitsLocked();
      return Status::Ok();
    });
  }
  std::lock_guard<std::mutex> lock(boundary_mutex_);
  if (!mirror_.HasArc(from, to)) {
    return NotFoundError("arc (" + std::to_string(from) + "," +
                         std::to_string(to) + ") not in graph");
  }
  TREL_CHECK(mirror_.RemoveArc(from, to).ok());
  RebuildBitsLocked();
  return Status::Ok();
}

uint64_t ShardedQueryService::Publish() {
  const int64_t start = LatencyRollup::MonotonicNanos();
  for (auto& shard : shards_) shard->Publish();
  const uint64_t epoch = epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    std::lock_guard<std::mutex> lock(boundary_mutex_);
    PublishBoundaryLocked();
  }
  NotePublish(epoch, (LatencyRollup::MonotonicNanos() - start) / 1000);
  CheckFlightRecorder();
  return epoch;
}

uint64_t ShardedQueryService::PublishShard(int shard) {
  TREL_CHECK_GE(shard, 0);
  TREL_CHECK_LT(shard, num_shards());
  const int64_t start = LatencyRollup::MonotonicNanos();
  shards_[shard]->Publish();
  const uint64_t epoch = epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    std::lock_guard<std::mutex> lock(boundary_mutex_);
    PublishBoundaryLocked();
  }
  NotePublish(epoch, (LatencyRollup::MonotonicNanos() - start) / 1000);
  CheckFlightRecorder();
  return epoch;
}

void ShardedQueryService::NotePublish(uint64_t epoch, int64_t micros) {
  last_publish_micros_.store(micros, std::memory_order_relaxed);
  last_publish_epoch_.store(epoch, std::memory_order_relaxed);
  has_publish_.store(true, std::memory_order_relaxed);
}

bool ShardedQueryService::CheckFlightRecorder() const {
  FlightRecorder::Inputs inputs;
  int64_t rejected = 0;
  for (const auto& shard : shards_) {
    rejected += shard->Metrics().batches_rejected;
  }
  inputs.batches_rejected = rejected;
  inputs.boundary_republishes =
      boundary_republishes_.load(std::memory_order_relaxed);
  inputs.has_publish = has_publish_.load(std::memory_order_relaxed);
  inputs.last_publish_micros =
      last_publish_micros_.load(std::memory_order_relaxed);
  inputs.last_publish_epoch =
      last_publish_epoch_.load(std::memory_order_relaxed);
  return flight_.Check(inputs);
}

template <bool kTimed>
bool ShardedQueryService::ReachesCore(const BoundarySnapshot& b, NodeId u,
                                      NodeId v, RouteInfo* route,
                                      StageTrace* stages) const {
  int64_t mark = 0;
  if constexpr (kTimed) mark = LatencyRollup::MonotonicNanos();
  // Attributes the nanos since `mark` to `stage`; a no-op (and no clock
  // read) on the untimed path.
  const auto close_stage = [&](QueryStage stage) {
    if constexpr (kTimed) {
      const int64_t now = LatencyRollup::MonotonicNanos();
      stages->stage_nanos[static_cast<int>(stage)] +=
          static_cast<uint32_t>(now - mark);
      mark = now;
    }
  };

  // kRoute: bounds check + per-endpoint shard routing.  Snapshot
  // semantics: ids the published boundary has never heard of reach
  // nothing (matches ClosureSnapshot).
  if (u < 0 || v < 0 || u >= b.num_nodes || v >= b.num_nodes) {
    close_stage(QueryStage::kRoute);
    return false;
  }
  if (u == v) {
    close_stage(QueryStage::kRoute);
    return true;
  }
  const int su = b.ShardOfAt(u);
  const int sv = b.ShardOfAt(v);
  route->su = su;
  route->sv = sv;
  if (su != sv) cross_shard_queries_.fetch_add(1, std::memory_order_relaxed);
  close_stage(QueryStage::kRoute);

  // kHopCore: hub-to-hub routes through the 2-hop core over the hub
  // graph (the hub-bit probes are part of this stage).
  if (b.hop != nullptr) {
    const int hu = b.HubBit(u);
    if (hu >= 0) {
      const int hv = b.HubBit(v);
      if (hv >= 0) {
        hub_hop_queries_.fetch_add(1, std::memory_order_relaxed);
        const bool answer = b.hop->Reaches(hu, hv);
        route->tag = ProbeTag::kHopIntersect;
        close_stage(QueryStage::kHopCore);
        return answer;
      }
    }
  }
  close_stage(QueryStage::kHopCore);

  // kBoundaryBitset: hub out-row x in-row intersection.
  if (b.words > 0 && RowsIntersect(b.OutRow(u), b.InRow(v), b.words)) {
    route->tag = ProbeTag::kBoundaryBitset;
    close_stage(QueryStage::kBoundaryBitset);
    return true;
  }
  close_stage(QueryStage::kBoundaryBitset);

  if (su == sv) {
    // kShardQuery: defer into the owning shard's local index.
    route->shard = su;
    route->tag = ProbeTag::kFallback;
    const bool answer = shards_[su]->Reaches(b.LocalIdAt(u), b.LocalIdAt(v));
    close_stage(QueryStage::kShardQuery);
    return answer;
  }
  // Cross-shard with no hub witness: unreachable, decided by the bitset.
  route->tag = ProbeTag::kBoundaryBitset;
  return false;
}

bool ShardedQueryService::Reaches(NodeId u, NodeId v) const {
  const std::shared_ptr<const BoundarySnapshot> b =
      boundary_.load(std::memory_order_acquire);
  RouteInfo route;
  if (!tracer_.ShouldSample()) {
    // Hot path: two clock reads feeding the windowed rollup; the
    // per-stage timers compile out of ReachesCore<false>.
    const int64_t start = LatencyRollup::MonotonicNanos();
    const bool answer = ReachesCore<false>(*b, u, v, &route, nullptr);
    const int64_t nanos = LatencyRollup::MonotonicNanos() - start;
    RecordSingle(u, v, answer, route, b->epoch, nanos);
    return answer;
  }
  StageTrace stages;
  const int64_t start = LatencyRollup::MonotonicNanos();
  const bool answer = ReachesCore<true>(*b, u, v, &route, &stages);
  const int64_t nanos = LatencyRollup::MonotonicNanos() - start;
  stages.shard = route.shard;
  tracer_.Record(u, v, answer, /*from_batch=*/false, route.tag,
                 /*extras_probes=*/0, b->epoch, static_cast<uint64_t>(nanos),
                 &stages);
  for (int s = 0; s < kNumQueryStages; ++s) {
    if (stages.stage_nanos[s] > 0) rollup_.Record(s, stages.stage_nanos[s]);
  }
  RecordSingle(u, v, answer, route, b->epoch, nanos);
  return answer;
}

void ShardedQueryService::RecordSingle(NodeId u, NodeId v, bool answer,
                                       const RouteInfo& route, uint64_t epoch,
                                       int64_t nanos) const {
  rollup_.Record(kRollupSingleSeries, nanos);
  if (route.su >= 0) rollup_.Record(kRollupShardBase + route.su, nanos);
  if (options_.slow_query_micros > 0 &&
      nanos >= options_.slow_query_micros * 1000) {
    SlowQueryEntry entry;
    entry.is_batch = false;
    entry.source = u;
    entry.target = v;
    entry.answer = answer;
    entry.tag = route.tag;
    entry.epoch = epoch;
    entry.micros = nanos / 1000;
    entry.source_shard = route.su;
    entry.target_shard = route.sv;
    entry.cross_shard = route.su >= 0 && route.sv >= 0 && route.su != route.sv;
    slow_log_.Record(entry);
  }
}

std::vector<uint8_t> ShardedQueryService::BatchReaches(
    const std::vector<std::pair<NodeId, NodeId>>& pairs) const {
  // Batches are always stage-timed: a handful of clock reads per batch
  // (never per pair) amortize to nothing against the kernel work.
  const int64_t t_start = LatencyRollup::MonotonicNanos();
  const std::shared_ptr<const BoundarySnapshot> b =
      boundary_.load(std::memory_order_acquire);
  const int64_t n = static_cast<int64_t>(pairs.size());
  const bool sampled = n > 0 && tracer_.ShouldSample();
  std::vector<uint8_t> results(pairs.size(), 0);
  // Per-pair decision tags, tracked only for sampled batches.
  std::vector<uint8_t> tags;
  if (sampled) {
    tags.assign(pairs.size(), static_cast<uint8_t>(ProbeTag::kSlot));
  }
  // Pairs the bitset layer cannot settle (same shard, no hub witness)
  // are deferred per shard and run through that shard's SIMD batch
  // kernels in one call each.
  std::vector<std::vector<std::pair<NodeId, NodeId>>> deferred(
      shards_.size());
  std::vector<std::vector<int64_t>> deferred_idx(shards_.size());
  int64_t cross = 0;
  int32_t first_su = -1;
  int32_t first_sv = -1;
  // Everything up to here (snapshot load + allocations) is kRoute.
  const int64_t t_setup = LatencyRollup::MonotonicNanos();
  for (int64_t i = 0; i < n; ++i) {
    const NodeId u = pairs[i].first;
    const NodeId v = pairs[i].second;
    if (u < 0 || v < 0 || u >= b->num_nodes || v >= b->num_nodes) continue;
    if (u == v) {
      results[i] = 1;
      continue;
    }
    const int su = b->ShardOfAt(u);
    const int sv = b->ShardOfAt(v);
    if (i == 0) {
      first_su = su;
      first_sv = sv;
    }
    if (su != sv) ++cross;
    if (b->words > 0 && RowsIntersect(b->OutRow(u), b->InRow(v), b->words)) {
      results[i] = 1;
      if (sampled) tags[i] = static_cast<uint8_t>(ProbeTag::kBoundaryBitset);
      continue;
    }
    if (su == sv) {
      deferred[su].emplace_back(b->LocalIdAt(u), b->LocalIdAt(v));
      deferred_idx[su].push_back(i);
      if (sampled) tags[i] = static_cast<uint8_t>(ProbeTag::kFallback);
    } else if (sampled) {
      // Cross-shard with no hub witness: decided false by the bitset.
      tags[i] = static_cast<uint8_t>(ProbeTag::kBoundaryBitset);
    }
  }
  if (cross > 0) {
    cross_shard_queries_.fetch_add(cross, std::memory_order_relaxed);
  }
  // The settle loop is the boundary-bitset stage.
  const int64_t t_settle = LatencyRollup::MonotonicNanos();
  int64_t shard_nanos = 0;
  int64_t merge_nanos = 0;
  for (int s = 0; s < static_cast<int>(shards_.size()); ++s) {
    if (deferred[s].empty()) continue;
    const int64_t t0 = LatencyRollup::MonotonicNanos();
    const std::vector<uint8_t> local = shards_[s]->BatchReaches(deferred[s]);
    const int64_t t1 = LatencyRollup::MonotonicNanos();
    for (size_t j = 0; j < local.size(); ++j) {
      results[deferred_idx[s][j]] = local[j];
    }
    shard_nanos += t1 - t0;
    merge_nanos += LatencyRollup::MonotonicNanos() - t1;
  }

  // Stage totals feed the per-stage windows; the end-to-end total feeds
  // the "batch" series.
  int64_t stage_total[kNumQueryStages] = {};
  stage_total[static_cast<int>(QueryStage::kRoute)] = t_setup - t_start;
  stage_total[static_cast<int>(QueryStage::kBoundaryBitset)] =
      t_settle - t_setup;
  stage_total[static_cast<int>(QueryStage::kShardQuery)] = shard_nanos;
  stage_total[static_cast<int>(QueryStage::kMerge)] = merge_nanos;
  for (int s = 0; s < kNumQueryStages; ++s) {
    if (stage_total[s] > 0) rollup_.Record(s, stage_total[s]);
  }
  const int64_t total_nanos = LatencyRollup::MonotonicNanos() - t_start;
  rollup_.Record(kRollupBatchSeries, total_nanos);

  if (sampled) {
    // A bounded, evenly spaced selection of per-query outcomes, each
    // carrying the batch's per-query average stage split.
    const uint64_t per_query_nanos =
        static_cast<uint64_t>(total_nanos) / static_cast<uint64_t>(n);
    StageTrace rec_stages;
    for (int s = 0; s < kNumQueryStages; ++s) {
      rec_stages.stage_nanos[s] =
          static_cast<uint32_t>(stage_total[s] / n);
    }
    const int64_t stride = std::max<int64_t>(1, n / kMaxBatchTraceRecords);
    for (int64_t i = 0; i < n; i += stride) {
      const ProbeTag tag = static_cast<ProbeTag>(tags[i]);
      StageTrace st = rec_stages;
      if (tag == ProbeTag::kFallback) {
        st.shard = b->ShardOfAt(pairs[i].first);
      }
      tracer_.Record(pairs[i].first, pairs[i].second, results[i] != 0,
                     /*from_batch=*/true, tag, /*extras_probes=*/0, b->epoch,
                     per_query_nanos, &st);
    }
  }
  if (options_.slow_batch_micros > 0 && n > 0 &&
      total_nanos / 1000 >= options_.slow_batch_micros) {
    SlowQueryEntry entry;
    entry.is_batch = true;
    entry.source = pairs[0].first;
    entry.target = pairs[0].second;
    entry.num_queries = n;
    entry.epoch = b->epoch;
    entry.micros = total_nanos / 1000;
    entry.source_shard = first_su;
    entry.target_shard = first_sv;
    entry.cross_shard = first_su >= 0 && first_sv >= 0 && first_su != first_sv;
    slow_log_.Record(entry);
  }
  return results;
}

std::vector<NodeId> ShardedQueryService::Successors(NodeId u) const {
  const std::shared_ptr<const BoundarySnapshot> b =
      boundary_.load(std::memory_order_acquire);
  std::vector<NodeId> out;
  if (u < 0 || u >= b->num_nodes) return out;
  const int su = b->ShardOfAt(u);
  std::vector<std::pair<NodeId, NodeId>> local_pairs;
  std::vector<NodeId> local_global;
  const uint64_t* ru = b->words > 0 ? b->OutRow(u) : nullptr;
  for (int64_t i = 0; i < b->num_nodes; ++i) {
    const NodeId v = static_cast<NodeId>(i);
    if (v == u) continue;
    if (ru != nullptr && RowsIntersect(ru, b->InRow(v), b->words)) {
      out.push_back(v);
      continue;
    }
    if (b->ShardOfAt(v) == su) {
      local_pairs.emplace_back(b->LocalIdAt(u), b->LocalIdAt(v));
      local_global.push_back(v);
    }
  }
  if (!local_pairs.empty()) {
    const std::vector<uint8_t> hits = shards_[su]->BatchReaches(local_pairs);
    for (size_t j = 0; j < hits.size(); ++j) {
      if (hits[j]) out.push_back(local_global[j]);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

int ShardedQueryService::ShardOf(NodeId node) const {
  std::lock_guard<std::mutex> lock(boundary_mutex_);
  if (node < 0 || node >= shard_of_.size()) return -1;
  return shard_of_.At(node);
}

ShardedMetricsView ShardedQueryService::MetricsView() const {
  const std::shared_ptr<const BoundarySnapshot> b =
      boundary_.load(std::memory_order_acquire);
  ShardedMetricsView view;
  view.num_shards = num_shards();
  view.epoch = epoch_.load(std::memory_order_relaxed);
  view.num_nodes = b->num_nodes;
  view.num_hubs = static_cast<int64_t>(b->hub_at_bit.size());
  view.boundary_label_bytes = b->label_bytes;
  view.cross_shard_queries =
      cross_shard_queries_.load(std::memory_order_relaxed);
  view.hub_hop_queries = hub_hop_queries_.load(std::memory_order_relaxed);
  view.boundary_republishes =
      boundary_republishes_.load(std::memory_order_relaxed);
  view.boundary_skips = boundary_skips_.load(std::memory_order_relaxed);
  view.hub_promotions = hub_promotions_.load(std::memory_order_relaxed);
  return view;
}

// --- Writer-side boundary maintenance --------------------------------------

bool ShardedQueryService::WorkingBitsHitLocked(NodeId a, NodeId b) const {
  const int words = out_bits_.words();
  if (words == 0) return false;
  return RowsIntersect(out_bits_.Row(a), in_bits_.Row(b), words);
}

bool ShardedQueryService::ReachesGloballyLocked(
    NodeId a, NodeId b, const DynamicClosure* same_shard_dyn) const {
  if (a == b) return true;
  if (WorkingBitsHitLocked(a, b)) return true;
  if (same_shard_dyn != nullptr && shard_of_.At(a) == shard_of_.At(b)) {
    return same_shard_dyn->Reaches(local_id_.At(a), local_id_.At(b));
  }
  return false;
}

bool ShardedQueryService::OrRowChangedLocked(
    HubBits& bits, NodeId row, const std::vector<uint64_t>& src) {
  const int words = bits.words();
  const uint64_t* cur = bits.Row(row);
  bool changed = false;
  for (int i = 0; i < words; ++i) {
    if (src[i] & ~cur[i]) {
      changed = true;
      break;
    }
  }
  if (!changed) return false;
  uint64_t* dst = bits.MutableRow(row);
  for (int i = 0; i < words; ++i) dst[i] |= src[i];
  if (is_hub_[row]) hub_graph_dirty_ = true;
  return true;
}

void ShardedQueryService::PropagateRowsLocked(
    HubBits& bits, NodeId start, bool backward,
    const std::vector<uint64_t>& src) {
  if (bits.words() == 0) return;
  // Monotone worklist with subsumption early-stop: the invariant
  // "predecessor rows are supersets along every arc" means an unchanged
  // node's frontier is already settled.
  std::vector<NodeId> stack = {start};
  while (!stack.empty()) {
    const NodeId x = stack.back();
    stack.pop_back();
    if (!OrRowChangedLocked(bits, x, src)) continue;
    const std::vector<NodeId>& next =
        backward ? mirror_.InNeighbors(x) : mirror_.OutNeighbors(x);
    for (NodeId y : next) stack.push_back(y);
  }
}

void ShardedQueryService::ApplyArcBitsLocked(NodeId from, NodeId to) {
  if (out_bits_.words() == 0) return;
  // New arc from->to: every ancestor of `from` now reaches whatever hubs
  // `to` reaches, and every descendant of `to` is now reached by the
  // hubs reaching `from`.  Copy the source rows first — propagation may
  // relocate chunks.
  const uint64_t* out_row = out_bits_.Row(to);
  const std::vector<uint64_t> out_src(out_row, out_row + out_bits_.words());
  const uint64_t* in_row = in_bits_.Row(from);
  const std::vector<uint64_t> in_src(in_row, in_row + in_bits_.words());
  PropagateRowsLocked(out_bits_, from, /*backward=*/true, out_src);
  PropagateRowsLocked(in_bits_, to, /*backward=*/false, in_src);
}

void ShardedQueryService::AppendLeafBitsLocked(NodeId parent) {
  out_bits_.AppendRow(nullptr);  // A fresh leaf reaches no hubs.
  in_bits_.AppendRow(parent == kNoNode ? nullptr : in_bits_.Row(parent));
}

void ShardedQueryService::PromoteHubLocked(NodeId node) {
  const int bit = static_cast<int>(hub_at_bit_.size());
  hub_at_bit_.push_back(node);
  hub_bit_of_[node] = bit;
  is_hub_[node] = 1;
  const int need = WordsFor(static_cast<int64_t>(hub_at_bit_.size()));
  if (need > out_bits_.words()) {
    out_bits_.GrowWords(need);
    in_bits_.GrowWords(need);
  }
  // Reflexive bit on the hub itself, then into every ancestor's out set
  // and every descendant's in set.
  std::vector<uint64_t> src(out_bits_.words(), 0);
  src[bit / 64] = uint64_t{1} << (bit % 64);
  PropagateRowsLocked(out_bits_, node, /*backward=*/true, src);
  PropagateRowsLocked(in_bits_, node, /*backward=*/false, src);
  hub_graph_dirty_ = true;
  hub_promotions_.fetch_add(1, std::memory_order_relaxed);
}

void ShardedQueryService::RebuildBitsLocked() {
  const int words = WordsFor(static_cast<int64_t>(hub_at_bit_.size()));
  const NodeId n = mirror_.NumNodes();
  out_bits_.Reset(words);
  in_bits_.Reset(words);
  for (NodeId v = 0; v < n; ++v) {
    out_bits_.AppendRow(nullptr);
    in_bits_.AppendRow(nullptr);
  }
  hub_graph_dirty_ = true;
  if (words == 0) return;
  StatusOr<std::vector<NodeId>> topo = TopologicalOrder(mirror_);
  TREL_CHECK(topo.ok()) << "mirror must stay acyclic";
  for (int64_t i = n - 1; i >= 0; --i) {
    const NodeId x = (*topo)[i];
    uint64_t* row = out_bits_.MutableRow(x);
    if (is_hub_[x]) {
      row[hub_bit_of_[x] / 64] |= uint64_t{1} << (hub_bit_of_[x] % 64);
    }
    for (NodeId y : mirror_.OutNeighbors(x)) {
      const uint64_t* src = out_bits_.Row(y);
      for (int w = 0; w < words; ++w) row[w] |= src[w];
    }
  }
  for (int64_t i = 0; i < n; ++i) {
    const NodeId x = (*topo)[i];
    uint64_t* row = in_bits_.MutableRow(x);
    if (is_hub_[x]) {
      row[hub_bit_of_[x] / 64] |= uint64_t{1} << (hub_bit_of_[x] % 64);
    }
    for (NodeId y : mirror_.InNeighbors(x)) {
      const uint64_t* src = in_bits_.Row(y);
      for (int w = 0; w < words; ++w) row[w] |= src[w];
    }
  }
}

std::shared_ptr<const HopLabelIndex> ShardedQueryService::BuildHubHopLocked()
    const {
  const int h = static_cast<int>(hub_at_bit_.size());
  if (h == 0) return nullptr;
  // The hub graph is the hub-to-hub reachability relation read straight
  // off the (exact) working out-bitsets; HopLabelIndex over it answers
  // hub-pair queries through the shared 2-hop machinery.
  Digraph hub_graph(h);
  for (int i = 0; i < h; ++i) {
    const uint64_t* row = out_bits_.Row(hub_at_bit_[i]);
    for (int j = 0; j < h; ++j) {
      if (j == i) continue;
      if ((row[j / 64] >> (j % 64)) & 1) {
        TREL_CHECK(hub_graph.AddArc(i, j).ok());
      }
    }
  }
  return std::make_shared<const HopLabelIndex>(
      HopLabelIndex::Build(hub_graph, std::max(96, h)));
}

void ShardedQueryService::PublishBoundaryLocked() {
  const int64_t n = mirror_.NumNodes();
  const bool changed =
      out_bits_.dirty() || in_bits_.dirty() || hub_graph_dirty_ ||
      published_nodes_ != n || published_words_ != out_bits_.words() ||
      published_hubs_ != static_cast<int64_t>(hub_at_bit_.size());
  if (!changed) {
    boundary_skips_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::shared_ptr<const BoundarySnapshot> prev =
      boundary_.load(std::memory_order_acquire);
  auto snap = std::make_shared<BoundarySnapshot>();
  snap->epoch = epoch_.load(std::memory_order_relaxed);
  snap->num_nodes = n;
  snap->words = out_bits_.words();
  snap->out_chunks = out_bits_.chunks();
  snap->in_chunks = in_bits_.chunks();
  snap->shard_chunks = shard_of_.chunks();
  snap->local_chunks = local_id_.chunks();
  snap->hub_at_bit = hub_at_bit_;
  snap->hub_bits_sorted.reserve(hub_at_bit_.size());
  for (int32_t b = 0; b < static_cast<int32_t>(hub_at_bit_.size()); ++b) {
    snap->hub_bits_sorted.emplace_back(hub_at_bit_[b], b);
  }
  std::sort(snap->hub_bits_sorted.begin(), snap->hub_bits_sorted.end());
  // The 2-hop hub core is the expensive piece; rebuild it only when hub
  // reachability actually changed.
  snap->hop = (hub_graph_dirty_ || prev == nullptr || prev->hop == nullptr)
                  ? BuildHubHopLocked()
                  : prev->hop;
  snap->label_bytes =
      2 * n * snap->words * static_cast<int64_t>(sizeof(uint64_t)) +
      (snap->hop != nullptr ? snap->hop->LabelBytes() : 0);
  boundary_.store(std::shared_ptr<const BoundarySnapshot>(std::move(snap)),
                  std::memory_order_release);
  out_bits_.MarkAllShared();
  out_bits_.ClearDirty();
  in_bits_.MarkAllShared();
  in_bits_.ClearDirty();
  hub_graph_dirty_ = false;
  published_nodes_ = n;
  published_words_ = out_bits_.words();
  published_hubs_ = static_cast<int64_t>(hub_at_bit_.size());
  boundary_republishes_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace trel
