#ifndef TREL_SERVICE_SHARDED_SERVICE_H_
#define TREL_SERVICE_SHARDED_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "core/hop_label_index.h"
#include "graph/digraph.h"
#include "graph/partition.h"
#include "obs/flight_recorder.h"
#include "obs/rollup.h"
#include "obs/slow_log.h"
#include "obs/trace.h"
#include "service/query_service.h"

namespace trel {

// Options for ShardedQueryService.  Each shard runs a full QueryService
// (same options for all shards); per-shard worker pools default to 0
// because K shards on one box already oversubscribe a shared pool, and
// the batch fan-out gives per-shard kernels their own caller thread.
struct ShardedServiceOptions {
  ShardedServiceOptions() { shard.num_workers = 0; }

  int num_shards = 4;

  // Cut-window slack for the topological-range partitioner (see
  // graph/partition.h); num_shards above overrides the partition one.
  PartitionOptions partition;

  // Options applied to every per-shard QueryService.
  ServiceOptions shard;

  // --- Observability of the sharded front end (DESIGN.md §5) --------------
  // These govern the FRONT-END tracer / slow log / windowed rollup /
  // flight recorder, which see every query with its cross-shard routing
  // and stage attribution; each shard's own QueryService additionally
  // keeps its local observability (options above in `shard`).
  // Sample 1-in-N front-end queries; 0 = off.  A nonzero
  // TREL_TRACE_SAMPLE env value overrides this at construction.
  uint32_t trace_sample_period = 0;
  uint32_t trace_ring_capacity = QueryTracer::kDefaultRingCapacity;
  // Unlike the monolithic service, sharded singles are always timed
  // (the routing layer reads the clock for the windowed rollup anyway),
  // so slow-single coverage here is total, not sampled.
  int64_t slow_query_micros = 10000;
  int64_t slow_batch_micros = 100000;
  size_t slow_log_capacity = 64;
  FlightRecorder::Options flight;
};

// Counter/gauge view of the sharded layer itself; per-shard counters
// live in each shard's own ServiceMetrics (see shard(s).Metrics()).
struct ShardedMetricsView {
  int num_shards = 0;
  uint64_t epoch = 0;
  int64_t num_nodes = 0;
  int64_t num_hubs = 0;
  int64_t boundary_label_bytes = 0;
  int64_t cross_shard_queries = 0;
  int64_t hub_hop_queries = 0;
  int64_t boundary_republishes = 0;
  int64_t boundary_skips = 0;
  int64_t hub_promotions = 0;

  // Machine-checkable one-liner for /statusz (the sharded analogue of
  // ServiceMetrics::View::ToString()).
  std::string ToString() const;
};

// A horizontally partitioned QueryService (DESIGN.md §"Sharded query
// service").
//
// The DAG is split into K topological-range shards (graph/partition.h);
// each shard is served by its own single-writer QueryService, so updates
// to different shards commit and publish concurrently instead of
// serializing on one writer mutex.  Cross-shard reachability goes
// through a global boundary index: every cut arc is incident to a "hub"
// node, and per node the service maintains two hub bitsets —
// out_bits[u] = hubs reachable from u, in_bits[v] = hubs reaching v
// (both reflexive for hubs).  Those bitsets ARE a 2-hop labeling with
// the hubs as centers:
//
//   Reaches(u, v) = u == v
//                 | out_bits[u] & in_bits[v] != 0
//                 | same_shard(u, v) && shard.Reaches(local_u, local_v)
//
// which is exact: a path either stays inside one shard hub-free (the
// shard's interval labels see every intra-shard arc) or touches a hub,
// and the first hub on the path witnesses the bitset intersection.
// Hub-to-hub queries route through a HopLabelIndex built over the hub
// graph, reusing the PR 7 2-hop machinery for the boundary core.
//
// Writers: ops whose endpoints share a shard run inside that shard's
// writer mutex (QueryService::Apply) and then update the global mirror +
// bitsets under the boundary mutex; cross-shard arcs touch only the
// boundary state.  Lock order is always shard-then-boundary.  A new
// cross-shard arc between two non-hubs promotes the higher-degree
// endpoint to hub (the cover invariant is maintained dynamically).
//
// Publication: Publish() publishes every shard, then republishes the
// boundary snapshot only if a boundary row actually changed (or nodes /
// hubs were added); bitset and routing storage is chunked copy-on-write,
// so a republish after a typical leaf-append run copies only the tail
// chunk.  Readers are lock-free: one atomic shared_ptr for the boundary
// snapshot plus each shard's own snapshot.
//
// Snapshot semantics match the monolithic service: ids unknown to the
// published boundary snapshot reach nothing and are reached by nothing.
// A batch reads one boundary snapshot plus one snapshot per shard it
// touches; under concurrent publishes those can differ by an epoch
// (each sub-answer is individually consistent).
class ShardedQueryService {
 public:
  explicit ShardedQueryService(
      const ShardedServiceOptions& options = ShardedServiceOptions());
  ~ShardedQueryService();

  ShardedQueryService(const ShardedQueryService&) = delete;
  ShardedQueryService& operator=(const ShardedQueryService&) = delete;

  // --- Writer API ----------------------------------------------------

  // Replaces all state: partitions `graph`, loads every shard, rebuilds
  // the boundary index, and publishes.  Node ids are preserved (global
  // ids are the caller's ids; shards remap internally).
  Status Load(const Digraph& graph);

  // Mutators mirror DynamicClosure semantics and error codes.  New
  // leaves join their parent's shard (shard 0 for parentless roots) and
  // get the next sequential global id.
  StatusOr<NodeId> AddLeafUnder(NodeId parent);
  Status AddArc(NodeId from, NodeId to);
  Status RemoveArc(NodeId from, NodeId to);

  // Publishes every shard, then the boundary layer if dirty.  Returns
  // the new global publish epoch.
  uint64_t Publish();

  // Publishes one shard (plus the boundary layer if dirty) — the
  // concurrent-writer entry point: K threads each publishing their own
  // shard serialize only on the (cheap) boundary step.
  uint64_t PublishShard(int shard);

  // --- Reader API (lock-free) ----------------------------------------

  bool Reaches(NodeId u, NodeId v) const;
  std::vector<uint8_t> BatchReaches(
      const std::vector<std::pair<NodeId, NodeId>>& pairs) const;

  // Successor enumeration across shards, ascending by global id.  This
  // is a diagnostics path (O(n) bitset scan + per-shard batch), not a
  // hot path.
  std::vector<NodeId> Successors(NodeId u) const;

  // --- Introspection --------------------------------------------------

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const QueryService& shard(int s) const { return *shards_[s]; }
  QueryService& shard(int s) { return *shards_[s]; }

  // Shard owning `node`, or -1 for ids the writer has never seen.
  int ShardOf(NodeId node) const;

  uint64_t Epoch() const { return epoch_.load(std::memory_order_relaxed); }
  ShardedMetricsView MetricsView() const;

  // --- Observability (front-end; per-shard obs via shard(s)) ----------

  // The front-end tracer: sampled queries carry stage attribution
  // (StageTrace) and the deciding shard.  Mutable so tools can flip the
  // sampling period on a live service.
  QueryTracer& tracer() const { return tracer_; }
  // Slow front-end queries/batches, always shard-attributed.
  const SlowQueryLog& slow_log() const { return slow_log_; }
  // Windowed latency percentiles.  Series layout: the five pipeline
  // stages ("route", "boundary_bitset", "hop_core", "shard_query",
  // "merge") indexed by QueryStage, then "single" and "batch"
  // end-to-end, then "shard<s>" (singles attributed to the source
  // endpoint's shard).  Stage series are fed by every batch and by
  // sampled singles; end-to-end and shard series see every call.
  const LatencyRollup& rollup() const { return rollup_; }
  // The anomaly flight recorder over rollup() (obs/flight_recorder.h).
  FlightRecorder& flight_recorder() const { return flight_; }
  // Runs the flight-recorder detectors against the live counters
  // (rejected batches summed over shards, boundary republishes, last
  // publish span).  Called from /flightz and /metricsz rendering and
  // after publishes; safe from any thread.
  bool CheckFlightRecorder() const;

 private:
  static constexpr int64_t kRowsPerChunk = 4096;

  struct BitsChunk {
    std::vector<uint64_t> words;
  };
  struct RoutingChunk {
    std::vector<int32_t> data;
  };

  // Append-only chunked int32 array.  Snapshots share chunk pointers;
  // appends write into pre-sized slots past every snapshot's high-water
  // mark, so sharing needs no copy-on-write.
  class AppendArray {
   public:
    void Reset();
    void Append(int32_t value);
    int32_t At(int64_t i) const;
    int64_t size() const { return size_; }
    const std::vector<std::shared_ptr<RoutingChunk>>& chunks() const {
      return chunks_;
    }

   private:
    std::vector<std::shared_ptr<RoutingChunk>> chunks_;
    int64_t size_ = 0;
  };

  // Chunked copy-on-write bitset matrix (rows x words_per_row).  Row
  // mutation clones chunks shared with a published snapshot; row appends
  // write in place (past snapshot bounds).
  class HubBits {
   public:
    void Reset(int words_per_row);
    void AppendRow(const uint64_t* src);  // nullptr = zero row
    const uint64_t* Row(int64_t r) const;
    uint64_t* MutableRow(int64_t r);  // copy-on-write; marks dirty
    void GrowWords(int new_words);    // re-layout; marks dirty
    void MarkAllShared();             // after a snapshot took the chunks
    void ClearDirty() { dirty_ = false; }
    bool dirty() const { return dirty_; }
    int words() const { return words_; }
    int64_t rows() const { return rows_; }
    const std::vector<std::shared_ptr<BitsChunk>>& chunks() const {
      return chunks_;
    }

   private:
    int words_ = 0;
    int64_t rows_ = 0;
    std::vector<std::shared_ptr<BitsChunk>> chunks_;
    std::vector<uint8_t> shared_;
    bool dirty_ = false;
  };

  // Immutable published boundary layer.
  struct BoundarySnapshot {
    uint64_t epoch = 0;
    int64_t num_nodes = 0;
    int words = 0;
    std::vector<std::shared_ptr<BitsChunk>> out_chunks;
    std::vector<std::shared_ptr<BitsChunk>> in_chunks;
    std::vector<std::shared_ptr<RoutingChunk>> shard_chunks;
    std::vector<std::shared_ptr<RoutingChunk>> local_chunks;
    std::vector<NodeId> hub_at_bit;
    // (node, bit) ascending by node, for hub membership lookups.
    std::vector<std::pair<NodeId, int32_t>> hub_bits_sorted;
    std::shared_ptr<const HopLabelIndex> hop;  // over hub-bit ids
    int64_t label_bytes = 0;

    const uint64_t* OutRow(int64_t r) const;
    const uint64_t* InRow(int64_t r) const;
    int32_t ShardOfAt(int64_t r) const;
    int32_t LocalIdAt(int64_t r) const;
    int HubBit(NodeId node) const;  // -1 when not a hub
  };

  // How one single query routed: the endpoint shards, the shard whose
  // local index decided it (-1 = the boundary layer decided without
  // consulting a shard), and the probe tag for the trace record.
  struct RouteInfo {
    int32_t su = -1;
    int32_t sv = -1;
    int32_t shard = -1;
    ProbeTag tag = ProbeTag::kSlot;
  };

  // The single-query routing pipeline.  kTimed=false is the hot path:
  // the per-stage clock reads compile out and only the end-to-end pair
  // in Reaches() remains.  kTimed=true (sampled queries) additionally
  // attributes elapsed nanos to `stages` stage by stage on the same
  // monotonic clock, so the stage sum never exceeds the total.
  template <bool kTimed>
  bool ReachesCore(const BoundarySnapshot& b, NodeId u, NodeId v,
                   RouteInfo* route, StageTrace* stages) const;

  // Rollup + slow-log bookkeeping shared by both Reaches paths.
  void RecordSingle(NodeId u, NodeId v, bool answer, const RouteInfo& route,
                    uint64_t epoch, int64_t nanos) const;

  // Publishes the last publish span to the flight-recorder inputs.
  void NotePublish(uint64_t epoch, int64_t micros);

  // Writer-side helpers; all assume boundary_mutex_ is held.
  bool WorkingBitsHitLocked(NodeId a, NodeId b) const;
  bool ReachesGloballyLocked(NodeId a, NodeId b,
                             const DynamicClosure* same_shard_dyn) const;
  void ApplyArcBitsLocked(NodeId from, NodeId to);
  void AppendLeafBitsLocked(NodeId parent);
  void PromoteHubLocked(NodeId node);
  void RebuildBitsLocked();
  void PropagateRowsLocked(HubBits& bits, NodeId start, bool backward,
                           const std::vector<uint64_t>& src);
  bool OrRowChangedLocked(HubBits& bits, NodeId row,
                          const std::vector<uint64_t>& src);
  void PublishBoundaryLocked();
  std::shared_ptr<const HopLabelIndex> BuildHubHopLocked() const;

  ShardedServiceOptions options_;
  std::vector<std::unique_ptr<QueryService>> shards_;

  // Global writer state: the full-graph mirror (for validation, cycle
  // checks, and bitset propagation), routing arrays, hub registry, and
  // the working bitsets.  Guarded by boundary_mutex_; lock order is
  // shard writer mutex first (via QueryService::Apply), boundary second.
  mutable std::mutex boundary_mutex_;
  Digraph mirror_;
  AppendArray shard_of_;
  AppendArray local_id_;
  std::vector<uint8_t> is_hub_;
  std::vector<int32_t> hub_bit_of_;
  std::vector<NodeId> hub_at_bit_;
  HubBits out_bits_;
  HubBits in_bits_;
  bool hub_graph_dirty_ = false;
  int64_t published_nodes_ = -1;
  int published_words_ = -1;
  int64_t published_hubs_ = -1;

  std::atomic<std::shared_ptr<const BoundarySnapshot>> boundary_;
  std::atomic<uint64_t> epoch_{0};

  mutable std::atomic<int64_t> cross_shard_queries_{0};
  mutable std::atomic<int64_t> hub_hop_queries_{0};
  std::atomic<int64_t> boundary_republishes_{0};
  std::atomic<int64_t> boundary_skips_{0};
  std::atomic<int64_t> hub_promotions_{0};

  // Front-end observability (see the accessors above for semantics).
  mutable QueryTracer tracer_;
  mutable SlowQueryLog slow_log_;
  mutable LatencyRollup rollup_;
  mutable FlightRecorder flight_;
  std::atomic<int64_t> last_publish_micros_{0};
  std::atomic<uint64_t> last_publish_epoch_{0};
  std::atomic<bool> has_publish_{false};
};

}  // namespace trel

#endif  // TREL_SERVICE_SHARDED_SERVICE_H_
