#include "service/metrics.h"

#include <sstream>

#include "obs/histogram.h"

namespace trel {
namespace {

// Shared power-of-two bucket math (obs/histogram.h) under the name the
// recording code reads naturally.
int BucketFor(int64_t value, int buckets) {
  return PowerOfTwoBucket(value, buckets);
}

}  // namespace

void ServiceMetrics::RecordBatch(int64_t micros) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batch_micros_total_.fetch_add(micros, std::memory_order_relaxed);
  histogram_[BucketFor(micros, kLatencyBuckets)].fetch_add(
      1, std::memory_order_relaxed);
}

void ServiceMetrics::RecordPublishFull(PublishStrategy strategy,
                                       int64_t micros,
                                       int64_t total_intervals) {
  if (strategy == PublishStrategy::kChainFull) {
    publishes_chain_full_.fetch_add(1, std::memory_order_relaxed);
    publish_chain_full_micros_total_.fetch_add(micros,
                                               std::memory_order_relaxed);
    chain_full_intervals_last_.store(total_intervals,
                                     std::memory_order_relaxed);
  } else {
    publishes_optimal_full_.fetch_add(1, std::memory_order_relaxed);
    publish_optimal_full_micros_total_.fetch_add(micros,
                                                 std::memory_order_relaxed);
    optimal_full_intervals_last_.store(total_intervals,
                                       std::memory_order_relaxed);
  }
  last_publish_strategy_.store(static_cast<int>(strategy),
                               std::memory_order_relaxed);
}

void ServiceMetrics::RecordPublishDelta(int64_t micros, int64_t delta_nodes) {
  publishes_delta_.fetch_add(1, std::memory_order_relaxed);
  publish_delta_micros_total_.fetch_add(micros, std::memory_order_relaxed);
  delta_nodes_total_.fetch_add(delta_nodes, std::memory_order_relaxed);
  delta_histogram_[BucketFor(delta_nodes, kDeltaNodeBuckets)].fetch_add(
      1, std::memory_order_relaxed);
  last_publish_strategy_.store(static_cast<int>(PublishStrategy::kDelta),
                               std::memory_order_relaxed);
}

void ServiceMetrics::RecordBatchKernel(const BatchKernelStats& stats) {
  batch_fast_path_.fetch_add(stats.fast_path, std::memory_order_relaxed);
  batch_filter_rejects_.fetch_add(stats.filter_rejects,
                                  std::memory_order_relaxed);
  batch_group_rejects_.fetch_add(stats.group_rejects,
                                 std::memory_order_relaxed);
  batch_extras_searches_.fetch_add(stats.extras_searches,
                                   std::memory_order_relaxed);
}

ServiceMetrics::View ServiceMetrics::Read() const {
  View view;
  view.reach_queries = reach_queries_.load(std::memory_order_relaxed);
  view.successor_queries = successor_queries_.load(std::memory_order_relaxed);
  view.batches = batches_.load(std::memory_order_relaxed);
  view.batch_micros_total =
      batch_micros_total_.load(std::memory_order_relaxed);
  view.batches_rejected = batches_rejected_.load(std::memory_order_relaxed);
  view.publishes_chain_full =
      publishes_chain_full_.load(std::memory_order_relaxed);
  view.publishes_optimal_full =
      publishes_optimal_full_.load(std::memory_order_relaxed);
  view.publishes_full = view.publishes_chain_full + view.publishes_optimal_full;
  view.publishes_delta = publishes_delta_.load(std::memory_order_relaxed);
  view.publishes = view.publishes_full + view.publishes_delta;
  view.publish_chain_full_micros_total =
      publish_chain_full_micros_total_.load(std::memory_order_relaxed);
  view.publish_optimal_full_micros_total =
      publish_optimal_full_micros_total_.load(std::memory_order_relaxed);
  view.publish_full_micros_total = view.publish_chain_full_micros_total +
                                   view.publish_optimal_full_micros_total;
  view.publish_delta_micros_total =
      publish_delta_micros_total_.load(std::memory_order_relaxed);
  view.publish_micros_total =
      view.publish_full_micros_total + view.publish_delta_micros_total;
  view.delta_nodes_total = delta_nodes_total_.load(std::memory_order_relaxed);
  const int last = last_publish_strategy_.load(std::memory_order_relaxed);
  view.last_publish_strategy =
      last < 0 ? "none"
               : PublishStrategyName(static_cast<PublishStrategy>(last));
  view.chain_full_intervals_last =
      chain_full_intervals_last_.load(std::memory_order_relaxed);
  view.optimal_full_intervals_last =
      optimal_full_intervals_last_.load(std::memory_order_relaxed);
  view.chain_interval_blowup =
      (view.chain_full_intervals_last > 0 &&
       view.optimal_full_intervals_last > 0)
          ? static_cast<double>(view.chain_full_intervals_last) /
                static_cast<double>(view.optimal_full_intervals_last)
          : 0.0;
  view.batch_fast_path = batch_fast_path_.load(std::memory_order_relaxed);
  view.batch_filter_rejects =
      batch_filter_rejects_.load(std::memory_order_relaxed);
  view.batch_group_rejects =
      batch_group_rejects_.load(std::memory_order_relaxed);
  view.batch_extras_searches =
      batch_extras_searches_.load(std::memory_order_relaxed);
  for (int i = 0; i < kLatencyBuckets; ++i) {
    view.batch_latency_histogram[i] =
        histogram_[i].load(std::memory_order_relaxed);
  }
  for (int i = 0; i < kDeltaNodeBuckets; ++i) {
    view.delta_nodes_histogram[i] =
        delta_histogram_[i].load(std::memory_order_relaxed);
  }
  for (int i = 0; i < kNumIndexFamilies; ++i) {
    view.family_selects[i] = family_selects_[i].load(std::memory_order_relaxed);
  }
  return view;
}

std::string ServiceMetrics::View::ToString() const {
  std::ostringstream out;
  out << "epoch=" << current_epoch << " age_s=" << snapshot_age_seconds
      << " nodes=" << snapshot_num_nodes
      << " intervals=" << snapshot_total_intervals
      << " overlay_nodes=" << snapshot_overlay_nodes
      << " arena_bytes=" << snapshot_arena_bytes
      << " simd=" << simd_level_name
      << " reach_queries=" << reach_queries
      << " successor_queries=" << successor_queries
      << " batches=" << batches << " batch_us=" << batch_micros_total
      << " batches_rejected=" << batches_rejected
      << " batch_kernel=[fast=" << batch_fast_path
      << " filter_rej=" << batch_filter_rejects
      << " group_rej=" << batch_group_rejects
      << " extras=" << batch_extras_searches << "]"
      << " publishes=" << publishes << " (full=" << publishes_full
      << " delta=" << publishes_delta << ")"
      << " publish_us=" << publish_micros_total << " (full="
      << publish_full_micros_total << " delta=" << publish_delta_micros_total
      << ") delta_nodes=" << delta_nodes_total;
  out << " latency_hist_us=[";
  bool first = true;
  for (int i = 0; i < kLatencyBuckets; ++i) {
    if (batch_latency_histogram[i] == 0) continue;
    if (!first) out << " ";
    out << "<" << (int64_t{1} << (i + 1)) << ":"
        << batch_latency_histogram[i];
    first = false;
  }
  out << "] delta_nodes_hist=[";
  first = true;
  for (int i = 0; i < kDeltaNodeBuckets; ++i) {
    if (delta_nodes_histogram[i] == 0) continue;
    if (!first) out << " ";
    out << "<" << (int64_t{1} << (i + 1)) << ":" << delta_nodes_histogram[i];
    first = false;
  }
  out << "]";
  // Appended past every pre-family field: tools/obs_check.py matches its
  // fixed fields leftmost, so new names must never precede old ones.
  out << " index_family=" << index_family_name
      << " family_label_bytes=" << family_label_bytes << " family_selects=[";
  for (int i = 0; i < kNumIndexFamilies; ++i) {
    if (i > 0) out << " ";
    out << IndexFamilyName(static_cast<IndexFamily>(i)) << "="
        << family_selects[i];
  }
  out << "]";
  // Publish-strategy split, appended past the family block for the same
  // leftmost-match reason.  The legacy full counters above stay as the
  // chain_full + optimal_full sums.
  out << " publish_strategy=" << last_publish_strategy
      << " publishes_chain_full=" << publishes_chain_full
      << " publishes_optimal_full=" << publishes_optimal_full
      << " publish_us_chain_full=" << publish_chain_full_micros_total
      << " publish_us_optimal_full=" << publish_optimal_full_micros_total
      << " chain_intervals_last=" << chain_full_intervals_last
      << " optimal_intervals_last=" << optimal_full_intervals_last
      << " chain_blowup=" << chain_interval_blowup;
  return out.str();
}

}  // namespace trel
