#include "service/metrics.h"

#include <sstream>

namespace trel {
namespace {

int BucketFor(int64_t micros) {
  int bucket = 0;
  while (bucket + 1 < ServiceMetrics::kLatencyBuckets &&
         micros >= (int64_t{1} << (bucket + 1))) {
    ++bucket;
  }
  return bucket;
}

}  // namespace

void ServiceMetrics::RecordBatch(int64_t micros) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batch_micros_total_.fetch_add(micros, std::memory_order_relaxed);
  histogram_[BucketFor(micros)].fetch_add(1, std::memory_order_relaxed);
}

void ServiceMetrics::RecordPublish(int64_t micros) {
  publishes_.fetch_add(1, std::memory_order_relaxed);
  publish_micros_total_.fetch_add(micros, std::memory_order_relaxed);
}

ServiceMetrics::View ServiceMetrics::Read() const {
  View view;
  view.reach_queries = reach_queries_.load(std::memory_order_relaxed);
  view.successor_queries = successor_queries_.load(std::memory_order_relaxed);
  view.batches = batches_.load(std::memory_order_relaxed);
  view.batch_micros_total =
      batch_micros_total_.load(std::memory_order_relaxed);
  view.publishes = publishes_.load(std::memory_order_relaxed);
  view.publish_micros_total =
      publish_micros_total_.load(std::memory_order_relaxed);
  for (int i = 0; i < kLatencyBuckets; ++i) {
    view.batch_latency_histogram[i] =
        histogram_[i].load(std::memory_order_relaxed);
  }
  return view;
}

std::string ServiceMetrics::View::ToString() const {
  std::ostringstream out;
  out << "epoch=" << current_epoch << " age_s=" << snapshot_age_seconds
      << " nodes=" << snapshot_num_nodes
      << " intervals=" << snapshot_total_intervals
      << " reach_queries=" << reach_queries
      << " successor_queries=" << successor_queries
      << " batches=" << batches << " batch_us=" << batch_micros_total
      << " publishes=" << publishes << " publish_us=" << publish_micros_total;
  out << " latency_hist_us=[";
  bool first = true;
  for (int i = 0; i < kLatencyBuckets; ++i) {
    if (batch_latency_histogram[i] == 0) continue;
    if (!first) out << " ";
    out << "<" << (int64_t{1} << (i + 1)) << ":"
        << batch_latency_histogram[i];
    first = false;
  }
  out << "]";
  return out.str();
}

}  // namespace trel
