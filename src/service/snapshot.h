#ifndef TREL_SERVICE_SNAPSHOT_H_
#define TREL_SERVICE_SNAPSHOT_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "core/closure_stats.h"
#include "core/compressed_closure.h"

namespace trel {

// One immutable, internally consistent version of the reachability index.
// QueryService's single writer publishes snapshots via atomic shared_ptr
// swap; any number of readers may then query one concurrently without
// synchronization because nothing here mutates after construction.
//
// Readers that issue many queries should grab the snapshot once and query
// it directly rather than going through the service per query: the only
// shared mutable state on the read path is the shared_ptr control block,
// and touching it once per batch instead of once per query keeps reader
// threads from bouncing that cache line.
struct ClosureSnapshot {
  // Monotonic publication counter: epoch e+1 replaced epoch e.  Epoch 0
  // is the empty pre-Load index.
  uint64_t epoch = 0;
  // The queryable index, exported from the writer's DynamicClosure.
  CompressedClosure closure;
  // Interval-set statistics; default-initialized when
  // ServiceOptions::stats_on_publish is off.  Refreshed on *full*
  // publishes only — a delta publish carries its base's stats forward
  // (recomputing them is O(n), exactly the cost delta publication avoids),
  // so on delta snapshots they describe the last full export.
  ClosureStats stats;
  // Delta provenance: true when this snapshot was built as a
  // copy-on-write overlay over the previous one, with the number of
  // changed per-node entries the publish shipped.  Full exports leave
  // both at their defaults.
  bool delta_publish = false;
  int64_t delta_entries = 0;
  // Publication instant on the MONOTONIC clock, captured by the writer
  // right before the atomic swap.  steady_clock by type so wall-clock
  // adjustments (NTP steps, suspend fix-ups) can never yield negative
  // ages; default-initialized to construction time so a snapshot that
  // never went through PublishLocked still reports a sane age.
  std::chrono::steady_clock::time_point created_at =
      std::chrono::steady_clock::now();

  double AgeSeconds() const {
    const double age = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - created_at)
                           .count();
    // Belt and braces: created_at is captured strictly before readers can
    // see the snapshot, but clamp anyway so no exposition path ever
    // reports a negative age.
    return age < 0.0 ? 0.0 : age;
  }

  NodeId NumNodes() const { return closure.NumNodes(); }

  // Snapshot semantics for node validity: ids the snapshot has never
  // heard of (e.g. nodes added by the writer after publication) reach
  // nothing and are reached by nothing, rather than being an error — a
  // reader holding an old snapshot cannot know what ids exist now.
  bool Reaches(NodeId u, NodeId v) const {
    if (!closure.IsValidNode(u) || !closure.IsValidNode(v)) return false;
    return closure.Reaches(u, v);
  }

  std::vector<NodeId> Successors(NodeId u) const {
    if (!closure.IsValidNode(u)) return {};
    return closure.Successors(u);
  }

  int64_t CountSuccessors(NodeId u) const {
    if (!closure.IsValidNode(u)) return 0;
    return closure.CountSuccessors(u);
  }
};

}  // namespace trel

#endif  // TREL_SERVICE_SNAPSHOT_H_
