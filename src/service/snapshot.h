#ifndef TREL_SERVICE_SNAPSHOT_H_
#define TREL_SERVICE_SNAPSHOT_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/closure_stats.h"
#include "core/compressed_closure.h"
#include "core/hop_label_index.h"
#include "core/index_family.h"
#include "core/tree_cover_index.h"
#include "obs/span_log.h"

namespace trel {

// One immutable, internally consistent version of the reachability index.
// QueryService's single writer publishes snapshots via atomic shared_ptr
// swap; any number of readers may then query one concurrently without
// synchronization because nothing here mutates after construction.
//
// Readers that issue many queries should grab the snapshot once and query
// it directly rather than going through the service per query: the only
// shared mutable state on the read path is the shared_ptr control block,
// and touching it once per batch instead of once per query keeps reader
// threads from bouncing that cache line.
struct ClosureSnapshot {
  // Monotonic publication counter: epoch e+1 replaced epoch e.  Epoch 0
  // is the empty pre-Load index.
  uint64_t epoch = 0;
  // The queryable index, exported from the writer's DynamicClosure.
  CompressedClosure closure;
  // Interval-set statistics; default-initialized when
  // ServiceOptions::stats_on_publish is off.  Refreshed on *full*
  // publishes only — a delta publish carries its base's stats forward
  // (recomputing them is O(n), exactly the cost delta publication avoids),
  // so on delta snapshots they describe the last full export.
  ClosureStats stats;
  // Delta provenance: true when this snapshot was built as a
  // copy-on-write overlay over the previous one, with the number of
  // changed per-node entries the publish shipped.  Full exports leave
  // both at their defaults.
  bool delta_publish = false;
  int64_t delta_entries = 0;
  // Which publish tier produced this snapshot (obs/span_log.h): kDelta
  // for overlays, else the provenance of the exported labeling —
  // kChainFull when it came from the chain-fast path cover, kOptimalFull
  // for the Alg1 antichain-optimal cover.
  PublishStrategy publish_strategy = PublishStrategy::kOptimalFull;
  // Which index family answers point queries on this snapshot, plus the
  // family structure itself when it is not the interval arena.  The
  // interval closure above is ALWAYS present — it backs WithDelta
  // overlays, successor/predecessor enumeration, and every query the
  // family build does not cover — so a family index is a point-query
  // accelerator layered on top, never a replacement.  Built on full
  // publishes only; delta publishes carry the base's family forward and
  // route queries touching changed nodes back to the (exact) overlay
  // closure via FamilyCovers below.
  IndexFamily family = IndexFamily::kIntervals;
  std::shared_ptr<const TreeCoverIndex> tree_index;
  std::shared_ptr<const HopLabelIndex> hop_index;
  // Node-count high-water mark of the family build: ids >= family_nodes
  // were added after it and must use the interval closure.
  NodeId family_nodes = 0;
  // Footprint of the selected family's labels (the interval arena's byte
  // size when family == kIntervals), for /statusz and the benchmarks.
  int64_t family_label_bytes = 0;
  // Publication instant on the MONOTONIC clock, captured by the writer
  // right before the atomic swap.  steady_clock by type so wall-clock
  // adjustments (NTP steps, suspend fix-ups) can never yield negative
  // ages; default-initialized to construction time so a snapshot that
  // never went through PublishLocked still reports a sane age.
  std::chrono::steady_clock::time_point created_at =
      std::chrono::steady_clock::now();

  double AgeSeconds() const {
    const double age = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - created_at)
                           .count();
    // Belt and braces: created_at is captured strictly before readers can
    // see the snapshot, but clamp anyway so no exposition path ever
    // reports a negative age.
    return age < 0.0 ? 0.0 : age;
  }

  NodeId NumNodes() const { return closure.NumNodes(); }

  // Snapshot semantics for node validity: ids the snapshot has never
  // heard of (e.g. nodes added by the writer after publication) reach
  // nothing and are reached by nothing, rather than being an error — a
  // reader holding an old snapshot cannot know what ids exist now.
  bool Reaches(NodeId u, NodeId v) const {
    if (!closure.IsValidNode(u) || !closure.IsValidNode(v)) return false;
    if (UsesFamily(u, v)) {
      return family == IndexFamily::kTrees ? tree_index->Reaches(u, v)
                                           : hop_index->Reaches(u, v);
    }
    return closure.Reaches(u, v);
  }

  // True iff the family build may answer for `x`: the node existed at
  // build time and its label entry was not replaced by a delta overlay
  // since.  Soundness: the writer's dirty tracking overapproximates label
  // changes, so a node outside the overlay has the same reachability
  // relation to every other non-overlay node as at the base epoch — where
  // the family index was exact.
  bool FamilyCovers(NodeId x) const {
    return x < family_nodes && !closure.IsOverlayMember(x);
  }

  // A query pair routes to the family index only when BOTH endpoints are
  // covered; anything touching an overlay member or a post-build node
  // falls back to the interval overlay closure, which is always exact.
  bool UsesFamily(NodeId u, NodeId v) const {
    return family != IndexFamily::kIntervals && FamilyCovers(u) &&
           FamilyCovers(v);
  }

  // Traced / batch twins of Reaches with the same family dispatch and
  // the same snapshot semantics as the closure's versions (out-of-range
  // ids answer 0).  On non-interval families the batch runs per query —
  // the family probes are merge scans and pruned searches, not the
  // arena's pipelined kernel — with tags folded into `stats` (hop
  // intersects count as fast path, fallback searches as extras).
  bool ReachesTraced(NodeId u, NodeId v, ProbeTrace* trace) const;
  void BatchReaches(const std::pair<NodeId, NodeId>* pairs, int64_t n,
                    uint8_t* out, BatchKernelStats* stats) const;
  void BatchReachesTraced(const std::pair<NodeId, NodeId>* pairs, int64_t n,
                          uint8_t* out, BatchKernelStats* stats,
                          uint8_t* tags) const;

  std::vector<NodeId> Successors(NodeId u) const {
    if (!closure.IsValidNode(u)) return {};
    return closure.Successors(u);
  }

  int64_t CountSuccessors(NodeId u) const {
    if (!closure.IsValidNode(u)) return 0;
    return closure.CountSuccessors(u);
  }
};

}  // namespace trel

#endif  // TREL_SERVICE_SNAPSHOT_H_
