#include "service/query_service.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/check.h"
#include "common/stopwatch.h"
#include "core/chain_propagator.h"
#include "core/simd_dispatch.h"

namespace trel {

namespace {

// Upper bound on trace records emitted per sampled batch: enough to see
// the outcome mix without one big batch flushing every ring.
constexpr int64_t kMaxBatchTraceRecords = 32;

// Rollup series of the monolithic service (constructor order).
constexpr int kRollupSingle = 0;
constexpr int kRollupBatch = 1;

}  // namespace

PublishStrategySetting ParsePublishStrategySetting(const char* value) {
  if (value == nullptr) return PublishStrategySetting::kAuto;
  if (std::strcmp(value, "delta") == 0) {
    return PublishStrategySetting::kForceDelta;
  }
  if (std::strcmp(value, "chain") == 0) {
    return PublishStrategySetting::kForceChain;
  }
  if (std::strcmp(value, "optimal") == 0) {
    return PublishStrategySetting::kForceOptimal;
  }
  return PublishStrategySetting::kAuto;
}

PublishStrategySetting PublishStrategySettingFromEnv() {
  return ParsePublishStrategySetting(std::getenv("TREL_PUBLISH"));
}

const char* PublishStrategySettingName(PublishStrategySetting setting) {
  switch (setting) {
    case PublishStrategySetting::kAuto:
      return "auto";
    case PublishStrategySetting::kForceDelta:
      return "delta";
    case PublishStrategySetting::kForceChain:
      return "chain";
    case PublishStrategySetting::kForceOptimal:
      return "optimal";
  }
  return "auto";
}

// --- WorkerPool ------------------------------------------------------------

QueryService::WorkerPool::WorkerPool(int num_workers) {
  threads_.reserve(num_workers);
  for (int i = 0; i < num_workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void QueryService::WorkerPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void QueryService::WorkerPool::ParallelFor(
    int64_t n, const std::function<void(int64_t, int64_t)>& body) {
  if (n <= 0) return;
  const int64_t chunks =
      std::min<int64_t>(n, static_cast<int64_t>(threads_.size()) + 1);
  const int64_t chunk_size = (n + chunks - 1) / chunks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    outstanding_ += chunks - 1;
    for (int64_t c = 1; c < chunks; ++c) {
      const int64_t begin = c * chunk_size;
      const int64_t end = std::min(n, begin + chunk_size);
      queue_.emplace_back([this, &body, begin, end] {
        body(begin, end);
        std::lock_guard<std::mutex> done_lock(mutex_);
        if (--outstanding_ == 0) work_done_.notify_all();
      });
    }
  }
  work_ready_.notify_all();
  // The calling thread takes the first chunk instead of sleeping.
  body(0, std::min(n, chunk_size));
  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [this] { return outstanding_ == 0; });
}

// --- QueryService ----------------------------------------------------------

QueryService::QueryService(const ServiceOptions& options)
    : options_(options),
      tracer_(options.trace_ring_capacity),
      span_log_(options.span_log_capacity),
      slow_log_(options.slow_log_capacity),
      rollup_({"single", "batch"}),
      flight_(options.flight),
      dynamic_(options.closure) {
  TREL_CHECK_GE(options_.num_workers, 0);
  const uint32_t env_period = QueryTracer::PeriodFromEnv();
  tracer_.SetSamplePeriod(env_period != 0 ? env_period
                                          : options_.trace_sample_period);
  flight_.Attach(&rollup_, [this](FlightCapture* capture) {
    capture->traces = tracer_.Drain();
    capture->spans = span_log_.Recent();
    capture->slow = slow_log_.Recent();
    capture->metrics = Metrics().ToString();
  });
  if (std::getenv("TREL_INDEX") != nullptr) {
    options_.index_family = IndexFamilySettingFromEnv();
  }
  if (std::getenv("TREL_PUBLISH") != nullptr) {
    options_.publish_strategy = PublishStrategySettingFromEnv();
  }
  if (options_.num_workers > 0) {
    pool_ = std::make_unique<WorkerPool>(options_.num_workers);
  }
  std::lock_guard<std::mutex> lock(writer_mutex_);
  epoch_ = static_cast<uint64_t>(-1);  // So the empty snapshot is epoch 0.
  PublishLocked();
}

QueryService::~QueryService() = default;

Status QueryService::Load(const Digraph& graph) {
  // Tiered build (DESIGN.md §"Publish strategies"): the chain-fast path
  // replaces Alg1's antichain-optimal cover with a greedy path cover when
  // the cover is narrow, cutting the dominant full-build cost.  Any
  // chain-path failure (cycle, entry cap) falls through to the Alg1
  // build, which reports the authoritative status.
  StatusOr<DynamicClosure> built(FailedPreconditionError("unbuilt"));
  const bool want_chain =
      options_.publish_strategy == PublishStrategySetting::kForceChain ||
      (options_.publish_strategy == PublishStrategySetting::kAuto &&
       [&graph] {
         StatusOr<ChainSignals> signals = AnalyzeChains(graph);
         return signals.ok() && signals->eligible;
       }());
  if (want_chain) {
    built = DynamicClosure::BuildWithChains(graph, options_.closure);
  }
  if (!built.ok()) {
    built = DynamicClosure::Build(graph, options_.closure);
  }
  TREL_RETURN_IF_ERROR(built.status());
  std::lock_guard<std::mutex> lock(writer_mutex_);
  dynamic_ = std::move(*built);
  // A fresh index is a new lineage: the previous snapshot's node ids mean
  // nothing to it, so it can never serve as a delta base.
  force_full_publish_ = true;
  chain_fulls_since_optimal_ = 0;
  PublishLocked();
  return Status::Ok();
}

StatusOr<NodeId> QueryService::AddLeafUnder(NodeId parent) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  return dynamic_.AddLeafUnder(parent);
}

Status QueryService::AddArc(NodeId from, NodeId to) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  return dynamic_.AddArc(from, to);
}

Status QueryService::RemoveArc(NodeId from, NodeId to) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  return dynamic_.RemoveArc(from, to);
}

Status QueryService::Apply(
    const std::function<Status(DynamicClosure&)>& fn) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  return fn(dynamic_);
}

uint64_t QueryService::Publish() {
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(writer_mutex_);
    epoch = PublishLocked();
  }
  // Detector pass outside the writer mutex: a stalled publish freezes
  // its capture right here instead of waiting for the next scrape.
  CheckFlightRecorder();
  return epoch;
}

bool QueryService::CheckFlightRecorder() const {
  FlightRecorder::Inputs inputs;
  inputs.batches_rejected =
      metrics_.Read().batches_rejected;
  const std::vector<PublishSpan> spans = span_log_.Recent();
  if (!spans.empty()) {
    inputs.has_publish = true;
    inputs.last_publish_micros = spans.back().total_micros;
    inputs.last_publish_epoch = spans.back().epoch;
  }
  return flight_.Check(inputs);
}

uint64_t QueryService::PublishLocked() {
  Stopwatch timer;
  PublishSpan span;
  std::shared_ptr<const ClosureSnapshot> base =
      snapshot_.load(std::memory_order_acquire);
  auto snapshot = std::make_shared<ClosureSnapshot>();
  snapshot->epoch = ++epoch_;
  span.epoch = epoch_;

  const NodeId num_nodes = dynamic_.NumNodes();
  const int64_t dirty = dynamic_.DirtyCount();
  const bool use_delta =
      options_.delta_publish && !force_full_publish_ && base != nullptr &&
      delta_publishes_since_full_ < options_.max_delta_publishes &&
      static_cast<double>(dirty) <=
          options_.max_delta_dirty_fraction * static_cast<double>(num_nodes);
  Stopwatch phase;
  if (use_delta) {
    span.strategy = PublishStrategy::kDelta;
    snapshot->publish_strategy = PublishStrategy::kDelta;
    ClosureDelta delta = dynamic_.ExportDelta();
    span.phase_micros[static_cast<int>(PublishPhase::kDrain)] =
        phase.ElapsedMicros();
    phase.Restart();
    snapshot->closure = CompressedClosure::WithDelta(base->closure, delta);
    span.phase_micros[static_cast<int>(PublishPhase::kExport)] =
        phase.ElapsedMicros();
    // Recomputing stats is O(n) — exactly the cost a delta publish exists
    // to avoid — so carry the base's forward (see snapshot.h).
    snapshot->stats = base->stats;
    // Likewise the family index: rebuilt on full publishes only.  The
    // overlay routing in ClosureSnapshot::FamilyCovers keeps the carried
    // index exact for untouched node pairs.
    snapshot->family = base->family;
    snapshot->tree_index = base->tree_index;
    snapshot->hop_index = base->hop_index;
    snapshot->family_nodes = base->family_nodes;
    snapshot->family_label_bytes = base->family_label_bytes;
    snapshot->delta_publish = true;
    snapshot->delta_entries = static_cast<int64_t>(delta.entries.size());
    ++delta_publishes_since_full_;
  } else {
    // Tier selection for the full export: decide whether to relabel
    // before exporting.  Rebuilds are timed as their own span phase —
    // they are the cost the chain-fast tier exists to cut.
    switch (options_.publish_strategy) {
      case PublishStrategySetting::kAuto:
        // Chain labelings trade interval count for build speed; every
        // Nth consecutive chain full re-tightens with an Alg1 rebuild.
        if (dynamic_.UsesChainCover() &&
            options_.chain_reoptimize_cadence > 0 &&
            chain_fulls_since_optimal_ + 1 >=
                options_.chain_reoptimize_cadence) {
          dynamic_.Reoptimize();
        }
        break;
      case PublishStrategySetting::kForceChain:
        if (!dynamic_.UsesChainCover()) {
          // Best effort: on failure (entry cap, cycle) the index is
          // untouched and this publish is tagged by its true provenance.
          const Status rebuilt = dynamic_.RebuildWithChains();
          (void)rebuilt;
        }
        break;
      case PublishStrategySetting::kForceOptimal:
        if (dynamic_.UsesChainCover()) dynamic_.Reoptimize();
        break;
      case PublishStrategySetting::kForceDelta:
        // Never rebuilds; the delta gate still demanded a full export.
        break;
    }
    span.phase_micros[static_cast<int>(PublishPhase::kRebuild)] =
        phase.ElapsedMicros();
    phase.Restart();
    // The strategy tag records labeling PROVENANCE, not intent: a failed
    // chain rebuild publishes (correctly) as optimal_full.
    const PublishStrategy full_strategy =
        dynamic_.UsesChainCover() ? PublishStrategy::kChainFull
                                  : PublishStrategy::kOptimalFull;
    span.strategy = full_strategy;
    snapshot->publish_strategy = full_strategy;
    if (full_strategy == PublishStrategy::kChainFull) {
      ++chain_fulls_since_optimal_;
    } else {
      chain_fulls_since_optimal_ = 0;
    }
    int64_t arena_micros = 0;
    if (pool_ != nullptr) {
      // Shard the arena build of the full export across the worker pool
      // (readers keep querying the old snapshot; the pool only blocks
      // batch queries, which share it).
      const ParallelRunner runner =
          [this](int64_t n, const std::function<void(int64_t, int64_t)>& body) {
            pool_->ParallelFor(n, body);
          };
      snapshot->closure = dynamic_.ExportClosure(
          &runner, /*retain_labels=*/false, &arena_micros);
    } else {
      snapshot->closure = dynamic_.ExportClosure(
          nullptr, /*retain_labels=*/false, &arena_micros);
    }
    // Family selection and build ride the export phase: scoring is one
    // degree pass, and a trees/hop build is the same order of work as
    // the arena build it replaces on the query path.
    snapshot->family = ResolveIndexFamily(options_.index_family,
                                          dynamic_.graph(),
                                          snapshot->closure.TotalIntervals());
    snapshot->family_nodes = num_nodes;
    switch (snapshot->family) {
      case IndexFamily::kTrees:
        snapshot->tree_index =
            std::make_shared<const TreeCoverIndex>(TreeCoverIndex::Build(
                dynamic_.graph(), TreeCoverIndex::kDefaultNumTrees,
                /*seed=*/epoch_ + 1));
        snapshot->family_label_bytes = snapshot->tree_index->LabelBytes();
        break;
      case IndexFamily::kHop:
        snapshot->hop_index = std::make_shared<const HopLabelIndex>(
            HopLabelIndex::Build(dynamic_.graph()));
        snapshot->family_label_bytes = snapshot->hop_index->LabelBytes();
        break;
      case IndexFamily::kIntervals:
        snapshot->family_label_bytes = snapshot->closure.ArenaByteSize();
        break;
    }
    metrics_.RecordFamilySelect(snapshot->family);
    // The export span is the label walk minus the arena construction the
    // closure timed for us (§4d's build-time tradeoff, now measured).
    span.phase_micros[static_cast<int>(PublishPhase::kExport)] =
        std::max<int64_t>(0, phase.ElapsedMicros() - arena_micros);
    span.phase_micros[static_cast<int>(PublishPhase::kArenaBuild)] =
        arena_micros;
    phase.Restart();
    // The full export captured every node, so the dirty set is settled.
    dynamic_.MarkClean();
    span.phase_micros[static_cast<int>(PublishPhase::kDrain)] =
        phase.ElapsedMicros();
    phase.Restart();
    if (options_.stats_on_publish) {
      snapshot->stats =
          ComputeClosureStats(dynamic_.graph(), snapshot->closure);
      span.phase_micros[static_cast<int>(PublishPhase::kStats)] =
          phase.ElapsedMicros();
    }
    delta_publishes_since_full_ = 0;
    force_full_publish_ = false;
  }
  snapshot->created_at = std::chrono::steady_clock::now();
  const int64_t delta_entries = snapshot->delta_entries;
  const int64_t total_intervals = snapshot->closure.TotalIntervals();
  phase.Restart();
  snapshot_.store(std::shared_ptr<const ClosureSnapshot>(std::move(snapshot)),
                  std::memory_order_release);
  span.phase_micros[static_cast<int>(PublishPhase::kSwap)] =
      phase.ElapsedMicros();
  span.total_micros = timer.ElapsedMicros();
  span_log_.Record(span);
  if (use_delta) {
    metrics_.RecordPublishDelta(span.total_micros, delta_entries);
  } else {
    metrics_.RecordPublishFull(span.strategy, span.total_micros,
                               total_intervals);
  }
  return epoch_;
}

bool QueryService::Reaches(NodeId u, NodeId v) const {
  metrics_.RecordReachQueries(1);
  // With tracing off (the default) ShouldSample is one relaxed load and
  // one never-taken branch — the whole per-query observability cost.
  if (tracer_.ShouldSample()) return ReachesSampled(u, v);
  return Snapshot()->Reaches(u, v);
}

bool QueryService::ReachesSampled(NodeId u, NodeId v) const {
  const auto start = std::chrono::steady_clock::now();
  const std::shared_ptr<const ClosureSnapshot> snapshot = Snapshot();
  ProbeTrace trace;
  const bool answer = snapshot->ReachesTraced(u, v, &trace);
  const uint64_t nanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  tracer_.Record(u, v, answer, /*from_batch=*/false, trace.tag,
                 trace.extras_probes, snapshot->epoch, nanos);
  rollup_.Record(kRollupSingle, static_cast<int64_t>(nanos));
  if (options_.slow_query_micros > 0 &&
      nanos >= static_cast<uint64_t>(options_.slow_query_micros) * 1000) {
    SlowQueryEntry entry;
    entry.is_batch = false;
    entry.source = u;
    entry.target = v;
    entry.answer = answer;
    entry.tag = trace.tag;
    entry.epoch = snapshot->epoch;
    entry.micros = static_cast<int64_t>(nanos / 1000);
    slow_log_.Record(entry);
  }
  return answer;
}

std::vector<NodeId> QueryService::Successors(NodeId u) const {
  metrics_.RecordSuccessorQueries(1);
  return Snapshot()->Successors(u);
}

// --- Batch admission ---------------------------------------------------------

QueryService::ScopedBatchSlot::ScopedBatchSlot(const QueryService& service)
    : service_(&service) {
  service_->inflight_batches_.fetch_add(1, std::memory_order_relaxed);
}

QueryService::ScopedBatchSlot::~ScopedBatchSlot() {
  if (service_ != nullptr) {
    service_->inflight_batches_.fetch_sub(1, std::memory_order_relaxed);
  }
}

QueryService::ScopedBatchSlot::ScopedBatchSlot(ScopedBatchSlot&& other) noexcept
    : service_(other.service_) {
  other.service_ = nullptr;
}

bool QueryService::AdmitBatch() const {
  // The caller has already taken its slot; reject when that pushed the
  // occupancy past the limit.  fetch_add-then-check keeps the gate one
  // relaxed RMW — two racing batches at the boundary can both see
  // "over" and both shed, which is the safe direction under overload.
  if (options_.max_inflight_batches <= 0) return true;
  if (inflight_batches_.load(std::memory_order_relaxed) <=
      options_.max_inflight_batches) {
    return true;
  }
  metrics_.RecordBatchRejected();
  return false;
}

std::vector<uint8_t> QueryService::BatchReaches(
    const std::vector<std::pair<NodeId, NodeId>>& pairs) const {
  const ScopedBatchSlot slot(*this);
  return BatchReachesImpl(pairs);
}

StatusOr<std::vector<uint8_t>> QueryService::TryBatchReaches(
    const std::vector<std::pair<NodeId, NodeId>>& pairs) const {
  const ScopedBatchSlot slot(*this);
  if (!AdmitBatch()) {
    return Status(StatusCode::kResourceExhausted,
                  "batch rejected: max_inflight_batches reached");
  }
  return BatchReachesImpl(pairs);
}

std::vector<std::vector<NodeId>> QueryService::BatchSuccessors(
    const std::vector<NodeId>& nodes) const {
  const ScopedBatchSlot slot(*this);
  return BatchSuccessorsImpl(nodes);
}

StatusOr<std::vector<std::vector<NodeId>>> QueryService::TryBatchSuccessors(
    const std::vector<NodeId>& nodes) const {
  const ScopedBatchSlot slot(*this);
  if (!AdmitBatch()) {
    return Status(StatusCode::kResourceExhausted,
                  "batch rejected: max_inflight_batches reached");
  }
  return BatchSuccessorsImpl(nodes);
}

std::vector<uint8_t> QueryService::BatchReachesImpl(
    const std::vector<std::pair<NodeId, NodeId>>& pairs) const {
  Stopwatch timer;
  const int64_t n = static_cast<int64_t>(pairs.size());
  std::shared_ptr<const ClosureSnapshot> snapshot = Snapshot();
  std::vector<uint8_t> results(pairs.size());
  // Sampling is per batch: a sampled batch runs the tagged kernel twin
  // (identical answers and stats) and later emits a bounded, evenly
  // spaced selection of its per-query outcomes as trace records.
  const bool sampled = n > 0 && tracer_.ShouldSample();
  std::vector<uint8_t> tags;
  if (sampled) tags.resize(pairs.size());
  // Batch-wide kernel tallies for the slow log and sampled traces: four
  // extra relaxed adds per CHUNK, the same cost class as the existing
  // metrics fold.
  struct {
    std::atomic<int64_t> fast_path{0};
    std::atomic<int64_t> filter_rejects{0};
    std::atomic<int64_t> group_rejects{0};
    std::atomic<int64_t> extras_searches{0};
  } tally;
  // Each chunk runs the dispatched pipelined batch kernel rather than
  // per-element snapshot->Reaches; the kernel's id handling matches
  // snapshot semantics (unknown ids answer false).  Kernel tallies are
  // accumulated per chunk in plain locals and folded into the shared
  // counters once per chunk.
  const auto body = [&](int64_t begin, int64_t end) {
    BatchKernelStats stats;
    if (sampled) {
      snapshot->BatchReachesTraced(pairs.data() + begin, end - begin,
                                   results.data() + begin, &stats,
                                   tags.data() + begin);
    } else {
      snapshot->BatchReaches(pairs.data() + begin, end - begin,
                             results.data() + begin, &stats);
    }
    metrics_.RecordBatchKernel(stats);
    tally.fast_path.fetch_add(stats.fast_path, std::memory_order_relaxed);
    tally.filter_rejects.fetch_add(stats.filter_rejects,
                                   std::memory_order_relaxed);
    tally.group_rejects.fetch_add(stats.group_rejects,
                                  std::memory_order_relaxed);
    tally.extras_searches.fetch_add(stats.extras_searches,
                                    std::memory_order_relaxed);
  };
  if (pool_ == nullptr || n < options_.min_parallel_batch) {
    body(0, n);
  } else {
    pool_->ParallelFor(n, body);
  }
  metrics_.RecordReachQueries(n);
  const int64_t micros = timer.ElapsedMicros();
  metrics_.RecordBatch(micros);
  rollup_.Record(kRollupBatch, micros * 1000);
  if (sampled) {
    const uint64_t per_query_nanos =
        static_cast<uint64_t>(micros) * 1000 / static_cast<uint64_t>(n);
    const int64_t stride = std::max<int64_t>(1, n / kMaxBatchTraceRecords);
    for (int64_t i = 0; i < n; i += stride) {
      tracer_.Record(pairs[i].first, pairs[i].second, results[i] != 0,
                     /*from_batch=*/true, static_cast<ProbeTag>(tags[i]),
                     /*extras_probes=*/0, snapshot->epoch, per_query_nanos);
    }
  }
  if (options_.slow_batch_micros > 0 && n > 0 &&
      micros >= options_.slow_batch_micros) {
    SlowQueryEntry entry;
    entry.is_batch = true;
    entry.source = pairs[0].first;
    entry.target = pairs[0].second;
    entry.num_queries = n;
    entry.epoch = snapshot->epoch;
    entry.micros = micros;
    entry.stats.fast_path = tally.fast_path.load(std::memory_order_relaxed);
    entry.stats.filter_rejects =
        tally.filter_rejects.load(std::memory_order_relaxed);
    entry.stats.group_rejects =
        tally.group_rejects.load(std::memory_order_relaxed);
    entry.stats.extras_searches =
        tally.extras_searches.load(std::memory_order_relaxed);
    slow_log_.Record(entry);
  }
  return results;
}

std::vector<std::vector<NodeId>> QueryService::BatchSuccessorsImpl(
    const std::vector<NodeId>& nodes) const {
  Stopwatch timer;
  const int64_t n = static_cast<int64_t>(nodes.size());
  std::shared_ptr<const ClosureSnapshot> snapshot = Snapshot();
  std::vector<std::vector<NodeId>> results(nodes.size());
  const auto body = [&snapshot, &nodes, &results](int64_t begin,
                                                  int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      results[i] = snapshot->Successors(nodes[i]);
    }
  };
  // Successor enumeration is output-sized, so parallelism pays off at
  // much smaller batch sizes than point lookups.
  if (pool_ == nullptr || n < std::max<int64_t>(options_.min_parallel_batch / 16, 2)) {
    body(0, n);
  } else {
    pool_->ParallelFor(n, body);
  }
  metrics_.RecordSuccessorQueries(n);
  metrics_.RecordBatch(timer.ElapsedMicros());
  return results;
}

ServiceMetrics::View QueryService::Metrics() const {
  ServiceMetrics::View view = metrics_.Read();
  std::shared_ptr<const ClosureSnapshot> snapshot = Snapshot();
  view.current_epoch = snapshot->epoch;
  view.inflight_batches = InflightBatches();
  view.snapshot_age_seconds = snapshot->AgeSeconds();
  view.snapshot_num_nodes = snapshot->NumNodes();
  view.snapshot_total_intervals = snapshot->closure.TotalIntervals();
  view.snapshot_overlay_nodes = snapshot->closure.OverlayNodeCount();
  view.snapshot_arena_bytes = snapshot->closure.ArenaByteSize();
  view.simd_level = static_cast<int>(ActiveSimdLevel());
  view.simd_level_name = SimdLevelName(ActiveSimdLevel());
  view.index_family = static_cast<int>(snapshot->family);
  view.index_family_name = IndexFamilyName(snapshot->family);
  view.family_label_bytes = snapshot->family_label_bytes;
  return view;
}

}  // namespace trel
