#ifndef TREL_SERVICE_EXPOSITION_H_
#define TREL_SERVICE_EXPOSITION_H_

#include <string>

#include "obs/flight_recorder.h"
#include "obs/rollup.h"
#include "obs/slow_log.h"
#include "obs/span_log.h"
#include "obs/trace.h"
#include "service/metrics.h"

namespace trel {

class QueryService;
class ShardedQueryService;

// Renders every ServiceMetrics counter and histogram, the publish-span
// phase breakdown (split delta / chain_full / optimal_full), and the
// tracer / slow-log
// summaries as Prometheus text exposition format (version 0.0.4).  All
// metric names carry the `trel_` prefix.  Null obs components are
// omitted, so tools can render a bare counter view.
std::string RenderMetricsz(const ServiceMetrics::View& view,
                           const QueryTracer* tracer, const SpanLog* spans,
                           const SlowQueryLog* slow,
                           const LatencyRollup* rollup = nullptr,
                           const FlightRecorder* flight = nullptr);

// Human-oriented one-page status: epoch / age / arena / SIMD gauges, the
// publish mix with per-phase averages, and the raw
// ServiceMetrics::View::ToString() line (machine-checkable against
// /metricsz — the --obs CI stage diffs the two).
std::string RenderStatusz(const ServiceMetrics::View& view,
                          const SpanLog* spans,
                          const LatencyRollup* rollup = nullptr);

// The latest drained trace records plus the slow-query log, one line per
// record, oldest first.  Stage-attributed records (sharded front end)
// carry ` shard=` / ` stages=[...]` suffixes; slow entries render via
// SlowQueryEntry::ToString (shard-attributed when available).
std::string RenderTracez(const QueryTracer* tracer, const SlowQueryLog* slow);

// Conveniences over a live service (current Metrics() view + its obs
// components).
std::string RenderMetricsz(const QueryService& service);
std::string RenderStatusz(const QueryService& service);
std::string RenderTracez(const QueryService& service);

// The anomaly flight recorder's JSON payload
// ({"total_triggered":N,"captures":[...]}; obs/flight_recorder.h).
// Rendering first runs the detectors against the live counters, so a
// scrape of /flightz is also a detector pass.
std::string RenderFlightz(const QueryService& service);

// Sharded-service exposition: the boundary layer's own families
// (trel_sharded_* / trel_boundary_* / trel_hub_*) plus every per-shard
// counter that matters for balance debugging, labeled shard="<s>".  The
// statusz page carries one line per shard, a `latency_windows:` block
// from the front-end rollup, and a machine-checkable
// `boundary_metrics:` line (ShardedMetricsView::ToString()) that the
// --obs CI stage diffs against /metricsz.
std::string RenderMetricsz(const ShardedQueryService& service);
std::string RenderStatusz(const ShardedQueryService& service);
std::string RenderTracez(const ShardedQueryService& service);
std::string RenderFlightz(const ShardedQueryService& service);

}  // namespace trel

#endif  // TREL_SERVICE_EXPOSITION_H_
