#ifndef TREL_SERVICE_QUERY_SERVICE_H_
#define TREL_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/statusor.h"
#include "core/dynamic_closure.h"
#include "graph/digraph.h"
#include "obs/flight_recorder.h"
#include "obs/rollup.h"
#include "obs/slow_log.h"
#include "obs/span_log.h"
#include "obs/trace.h"
#include "service/metrics.h"
#include "service/snapshot.h"

namespace trel {

// How the service picks its publish tier (DESIGN.md §"Publish
// strategies").  kAuto runs the full selector: delta overlay when the
// dirty set is small, chain-fast full builds when the graph's greedy
// path cover is narrow (core/chain_propagator.h), Alg1-optimal fulls
// otherwise plus on the re-optimization cadence.  The force values pin
// one tier for the CI publish matrix and benchmarks; forcing never
// changes the delta gate conditions (kForceDelta only suppresses
// rebuilds — a full export still happens when the gate demands one).
enum class PublishStrategySetting : uint8_t {
  kAuto = 0,
  kForceDelta = 1,
  kForceChain = 2,
  kForceOptimal = 3,
};

// "auto" / "delta" / "chain" / "optimal"; nullptr, empty, or unknown
// values parse as kAuto (an unset env var means "let the service pick").
PublishStrategySetting ParsePublishStrategySetting(const char* value);

// ParsePublishStrategySetting(getenv("TREL_PUBLISH")).
PublishStrategySetting PublishStrategySettingFromEnv();

const char* PublishStrategySettingName(PublishStrategySetting setting);

// Knobs for QueryService.
struct ServiceOptions {
  // Worker threads for the batch APIs.  0 disables the pool entirely
  // (batches run on the calling thread); the calling thread always works
  // alongside the pool, so fan-out is `num_workers + 1` wide.
  int num_workers = 4;
  // Batches smaller than this run inline — fan-out overhead (enqueue,
  // wake, join) dwarfs the per-query work below it.
  int64_t min_parallel_batch = 2048;
  // Admission control for the batch APIs: at most this many batches may
  // execute at once through TryBatchReaches / TryBatchSuccessors; calls
  // past the limit are rejected with kResourceExhausted (and counted in
  // ServiceMetrics::batches_rejected) instead of piling onto the worker
  // pool.  0 = unlimited (the default).  The non-Try entry points are
  // never rejected — they are the embedded/trusted API — but they do
  // occupy slots, so mixed traffic is gated coherently.
  int64_t max_inflight_batches = 0;
  // Compute ClosureStats for every *full* publish.  One O(n + k) pass on
  // the writer; turn off for very large graphs with frequent publishes.
  // Delta publishes never recompute stats (they carry the base's
  // forward) — that pass is exactly the cost they exist to avoid.
  bool stats_on_publish = true;
  // Publish copy-on-write delta snapshots (CompressedClosure::WithDelta)
  // when the update batch touched few nodes, making publish cost
  // proportional to the batch instead of the graph.  Off = every publish
  // is a full export (the pre-delta behavior).
  bool delta_publish = true;
  // Force a full export after this many consecutive delta publishes,
  // bounding the accumulated overlay (and the memory pinned in the shared
  // base snapshot) regardless of workload.  Must be >= 1.
  int max_delta_publishes = 32;
  // Fall back to a full export when more than this fraction of all nodes
  // is dirty — at that point the overlay would cost more to query than a
  // fresh base, and exporting it is no cheaper.
  double max_delta_dirty_fraction = 0.5;
  // Build options for the underlying index (gap numbering etc.).
  ClosureOptions closure = DynamicClosure::DefaultOptions();
  // Index family for full publishes: kAuto lets the selector score the
  // graph per snapshot (core/index_family.h); the force values pin one
  // family, mainly for the CI family matrix and benchmarks.  A TREL_INDEX
  // env value ("auto"/"intervals"/"trees"/"hop") overrides this at
  // construction.
  IndexFamilySetting index_family = IndexFamilySetting::kAuto;
  // Publish tier selection (see PublishStrategySetting above).  A set
  // TREL_PUBLISH env value overrides this at construction, mirroring
  // TREL_INDEX.
  PublishStrategySetting publish_strategy = PublishStrategySetting::kAuto;
  // Under kAuto, upgrade every Nth consecutive chain-full publish to an
  // Alg1-optimal rebuild (Reoptimize), re-tightening the interval count
  // the fast tier let grow.  <= 0 disables the cadence (chain labelings
  // then persist until an explicit Reoptimize).
  int chain_reoptimize_cadence = 8;

  // --- Observability (src/obs/, DESIGN.md §5) -----------------------------
  // Sample 1-in-N queries into the lock-free tracer; 0 = off (the
  // default — the hot path then pays one relaxed load + one branch).
  // Rounded up to a power of two.  A nonzero TREL_TRACE_SAMPLE env value
  // overrides this at construction.
  uint32_t trace_sample_period = 0;
  // Trace ring capacity per ring (16 rings; rounded up to a power of
  // two), i.e. how many recent samples Drain() can return.
  uint32_t trace_ring_capacity = QueryTracer::kDefaultRingCapacity;
  // Batches slower than this land in the always-on slow-query log;
  // 0 disables.  Batches are already timed for metrics, so this is one
  // extra compare per batch.
  int64_t slow_batch_micros = 100000;
  // SAMPLED single queries slower than this land in the slow-query log;
  // 0 disables.  Only sampled singles carry a timestamp (always-on
  // per-query clock reads would blow the <1% tracing-off budget), so
  // coverage follows the sampling period.
  int64_t slow_query_micros = 10000;
  // Bounded retention of the publish-span and slow-query logs.
  size_t span_log_capacity = 128;
  size_t slow_log_capacity = 64;
  // Anomaly flight-recorder thresholds (obs/flight_recorder.h).  The
  // detectors run at scrape time and after publishes, never per query.
  FlightRecorder::Options flight;
};

// Thread-safe, snapshot-based query front-end over the compressed
// transitive closure — the paper's read path ("a lookup instead of a
// traversal") made concurrently shareable.
//
// Concurrency contract:
//   * SINGLE WRITER.  At most one thread at a time may call the writer
//     API (Load / AddLeafUnder / AddArc / RemoveArc / Apply / Publish).
//     A writer mutex serializes accidental overlap, but the intended
//     deployment is one dedicated maintenance thread, as in the
//     query-serving / index-maintenance split of modern reachability
//     oracles.
//   * ANY NUMBER OF READERS, any thread, no locks.  Readers resolve
//     queries against the most recently *published* snapshot; the swap is
//     one atomic shared_ptr store.  Updates are invisible until the
//     writer calls Publish(), which is what makes every snapshot
//     internally consistent (a half-propagated interval set can never be
//     observed).
//   * Snapshots are immutable and reference-counted: a reader holding a
//     shared_ptr may keep using it for as long as it likes after newer
//     epochs supersede it.
class QueryService {
 public:
  explicit QueryService(const ServiceOptions& options = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // --- Writer API (single writer) ----------------------------------------

  // Replaces the index with a freshly built closure of `graph` and
  // publishes it.  Fails if `graph` is cyclic (condense first; see
  // TransitiveClosureIndex).
  Status Load(const Digraph& graph);

  // DynamicClosure updates, applied under the writer mutex.  Not visible
  // to readers until Publish().
  StatusOr<NodeId> AddLeafUnder(NodeId parent);
  Status AddArc(NodeId from, NodeId to);
  Status RemoveArc(NodeId from, NodeId to);

  // Escape hatch for compound maintenance (e.g. RefineAbove + arcs as one
  // unit): runs `fn` on the live index under the writer mutex.
  Status Apply(const std::function<Status(DynamicClosure&)>& fn);

  // Exports the writer's current state as an immutable snapshot and
  // atomically swaps it in.  Returns the new epoch.
  uint64_t Publish();

  // --- Reader API (any thread, lock-free) --------------------------------

  // The current snapshot.  Never null; epoch 0 before the first
  // Load/Publish.  For query loops, hold the snapshot and query it
  // directly (see ClosureSnapshot's note on refcount traffic).
  std::shared_ptr<const ClosureSnapshot> Snapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  // Single-shot conveniences against the current snapshot.
  bool Reaches(NodeId u, NodeId v) const;
  std::vector<NodeId> Successors(NodeId u) const;

  // Batched lookups, fanned across the worker pool (plus the calling
  // thread) for large batches.  The whole batch is answered from ONE
  // snapshot, so results are mutually consistent even while the writer
  // publishes concurrently.  Out-of-range ids follow snapshot semantics
  // (unreachable / empty), never abort.
  std::vector<uint8_t> BatchReaches(
      const std::vector<std::pair<NodeId, NodeId>>& pairs) const;
  std::vector<std::vector<NodeId>> BatchSuccessors(
      const std::vector<NodeId>& nodes) const;

  // Admission-controlled twins for serving-edge callers: when
  // ServiceOptions::max_inflight_batches is set and that many batches
  // are already executing, the call is rejected with kResourceExhausted
  // — counted in ServiceMetrics, never silently dropped — so overload
  // turns into fast, visible shedding instead of unbounded queueing.
  // With the limit unset they behave exactly like the plain entry
  // points.
  StatusOr<std::vector<uint8_t>> TryBatchReaches(
      const std::vector<std::pair<NodeId, NodeId>>& pairs) const;
  StatusOr<std::vector<std::vector<NodeId>>> TryBatchSuccessors(
      const std::vector<NodeId>& nodes) const;

  // RAII occupancy of one batch-admission slot, held exactly as an
  // executing batch holds one.  Maintenance code can drain batch
  // traffic by acquiring slots up to the limit (new Try* batches then
  // shed while singles keep flowing); tests pin the gate
  // deterministically.  Acquisition always succeeds — slots are
  // occupancy, not permits.
  class ScopedBatchSlot {
   public:
    explicit ScopedBatchSlot(const QueryService& service);
    ~ScopedBatchSlot();
    ScopedBatchSlot(ScopedBatchSlot&& other) noexcept;
    ScopedBatchSlot(const ScopedBatchSlot&) = delete;
    ScopedBatchSlot& operator=(const ScopedBatchSlot&) = delete;
    ScopedBatchSlot& operator=(ScopedBatchSlot&&) = delete;

   private:
    const QueryService* service_;
  };
  ScopedBatchSlot AcquireBatchSlot() const { return ScopedBatchSlot(*this); }

  // Batches executing right now (plus any held ScopedBatchSlots).
  int64_t InflightBatches() const {
    return inflight_batches_.load(std::memory_order_relaxed);
  }

  // Counter snapshot, with the epoch/age/size fields of the live index
  // snapshot filled in.
  ServiceMetrics::View Metrics() const;

  // --- Observability (src/obs/, DESIGN.md §5) -----------------------------

  // The sampled query tracer.  Mutable access so callers (tools, tests)
  // can flip the sampling period on a live service.
  QueryTracer& tracer() const { return tracer_; }
  // Publish-pipeline spans, split per strategy per phase.
  const SpanLog& span_log() const { return span_log_; }
  // Queries/batches that exceeded the slow thresholds (always on).
  const SlowQueryLog& slow_log() const { return slow_log_; }
  // Windowed latency percentiles.  Series: "single" (sampled point
  // lookups — the unsampled path never reads a clock) and "batch"
  // (every batch call, at zero extra clock cost: batches are already
  // timed for metrics).
  const LatencyRollup& rollup() const { return rollup_; }
  // The anomaly flight recorder over rollup() (obs/flight_recorder.h).
  FlightRecorder& flight_recorder() const { return flight_; }
  // Runs the flight-recorder detectors against the live counters.
  // Called from /flightz and /metricsz rendering and after publishes;
  // safe from any thread.  Returns true when a capture was frozen.
  bool CheckFlightRecorder() const;

 private:
  // Minimal fixed-size worker pool for batch fan-out.  Deliberately
  // simple: one mutex-guarded queue, blocking ParallelFor.  The service's
  // scaling story is the lock-free snapshot read path; the pool only
  // spreads embarrassingly parallel batch chunks.
  class WorkerPool {
   public:
    explicit WorkerPool(int num_workers);
    ~WorkerPool();

    int num_workers() const { return static_cast<int>(threads_.size()); }

    // Runs body(begin, end) over a partition of [0, n) across the pool
    // and the calling thread; returns when every chunk is done.
    void ParallelFor(int64_t n,
                     const std::function<void(int64_t, int64_t)>& body);

   private:
    void WorkerLoop();

    std::mutex mutex_;
    std::condition_variable work_ready_;
    std::condition_variable work_done_;
    std::deque<std::function<void()>> queue_;
    int64_t outstanding_ = 0;
    bool stopping_ = false;
    std::vector<std::thread> threads_;
  };

  // Builds and swaps in a snapshot of `dynamic_`; writer mutex held.
  // Chooses between a full export and a WithDelta overlay publish (see
  // ServiceOptions::delta_publish and DESIGN.md §4c).
  uint64_t PublishLocked();

  // Cold traced twin of Reaches, taken only for sampled queries.
  bool ReachesSampled(NodeId u, NodeId v) const;

  // Shared batch bodies; callers hold an inflight slot around them.
  std::vector<uint8_t> BatchReachesImpl(
      const std::vector<std::pair<NodeId, NodeId>>& pairs) const;
  std::vector<std::vector<NodeId>> BatchSuccessorsImpl(
      const std::vector<NodeId>& nodes) const;

  // True (slot kept) if another batch may start; false (slot released,
  // rejection counted) when the admission limit is hit.
  bool AdmitBatch() const;

  ServiceOptions options_;
  mutable ServiceMetrics metrics_;
  mutable QueryTracer tracer_;
  SpanLog span_log_;  // Written by the (single) publisher only.
  mutable SlowQueryLog slow_log_;
  mutable LatencyRollup rollup_;
  mutable FlightRecorder flight_;

  std::mutex writer_mutex_;
  DynamicClosure dynamic_;  // Guarded by writer_mutex_.
  uint64_t epoch_ = 0;      // Guarded by writer_mutex_.
  // Delta publishes since the last full export; guarded by writer_mutex_.
  int delta_publishes_since_full_ = 0;
  // Consecutive chain-full publishes since the last Alg1-optimal one;
  // drives the kAuto re-optimization cadence.  Guarded by writer_mutex_.
  int chain_fulls_since_optimal_ = 0;
  // Set when the previous snapshot cannot serve as a delta base (initial
  // state, or Load() swapped in a new index lineage).
  bool force_full_publish_ = true;  // Guarded by writer_mutex_.

  std::atomic<std::shared_ptr<const ClosureSnapshot>> snapshot_;
  std::unique_ptr<WorkerPool> pool_;  // Null when num_workers == 0.
  // Batches (and ScopedBatchSlots) currently occupying admission slots.
  mutable std::atomic<int64_t> inflight_batches_{0};
};

}  // namespace trel

#endif  // TREL_SERVICE_QUERY_SERVICE_H_
