#include "service/exposition.h"

#include <sstream>
#include <string>
#include <vector>

#include "obs/prometheus.h"
#include "service/query_service.h"
#include "service/sharded_service.h"

namespace trel {

namespace {

// Publish-span kind labels follow the strategy enum order
// (obs/span_log.h): 0 delta, 1 chain_full, 2 optimal_full.
const char* KindName(int kind) {
  return PublishStrategyName(static_cast<PublishStrategy>(kind));
}

std::string KindPhaseLabels(int kind, int phase) {
  return std::string("kind=\"") + KindName(kind) + "\",phase=\"" +
         PublishPhaseName(static_cast<PublishPhase>(phase)) + "\"";
}

// Windowed latency families (obs/rollup.h): per series x window, the
// three quantile gauges plus the window's observation count.  Sample
// lines of a family must stay contiguous under its header, so the two
// families iterate the series separately.
void AppendLatencyWindows(PrometheusText& out, const LatencyRollup& rollup) {
  out.Family("trel_latency_window_us",
             "Windowed latency quantiles from the per-minute rollup "
             "(upper edge of the deciding power-of-two bucket).",
             "gauge");
  for (int s = 0; s < rollup.num_series(); ++s) {
    for (const int minutes : LatencyRollup::WindowMinutes()) {
      const LatencyRollup::WindowStats stats = rollup.Window(s, minutes);
      const std::string base =
          PrometheusText::Label("series", rollup.series_name(s)) +
          ",window=\"" + std::to_string(minutes) + "m\",quantile=\"";
      out.Sample("trel_latency_window_us", base + "p50\"", stats.p50_us);
      out.Sample("trel_latency_window_us", base + "p99\"", stats.p99_us);
      out.Sample("trel_latency_window_us", base + "p999\"", stats.p999_us);
    }
  }
  out.Family("trel_latency_window_samples",
             "Observations inside each sliding latency window.", "gauge");
  for (int s = 0; s < rollup.num_series(); ++s) {
    for (const int minutes : LatencyRollup::WindowMinutes()) {
      out.Sample("trel_latency_window_samples",
                 PrometheusText::Label("series", rollup.series_name(s)) +
                     ",window=\"" + std::to_string(minutes) + "m\"",
                 rollup.Window(s, minutes).count);
    }
  }
}

// The /statusz `latency_windows:` block: one line per series x window.
void AppendLatencyWindowsStatus(std::ostringstream& out,
                                const LatencyRollup& rollup) {
  out << "latency_windows:\n";
  for (int s = 0; s < rollup.num_series(); ++s) {
    for (const int minutes : LatencyRollup::WindowMinutes()) {
      const LatencyRollup::WindowStats stats = rollup.Window(s, minutes);
      out << "  series=" << rollup.series_name(s) << " window=" << minutes
          << "m count=" << stats.count << " p50_us=" << stats.p50_us
          << " p99_us=" << stats.p99_us << " p999_us=" << stats.p999_us
          << "\n";
    }
  }
}

// Tracer-summary and slow-log families shared by the monolithic and
// sharded metricsz pages.
void AppendTracerFamilies(PrometheusText& out, const QueryTracer& tracer) {
  out.Family("trel_trace_sample_period",
             "Query-tracer sampling period (0 = off).", "gauge");
  out.Sample("trel_trace_sample_period", "",
             static_cast<int64_t>(tracer.sample_period()));
  out.Family("trel_trace_sampled_total",
             "Queries sampled into the tracer since startup.", "counter");
  out.Sample("trel_trace_sampled_total", "",
             static_cast<int64_t>(tracer.TotalSampled()));
  out.Family("trel_trace_records_total",
             "Sampled trace records by deciding probe path.", "counter");
  const std::array<uint64_t, kNumProbeTags> tags = tracer.TagCounts();
  for (int t = 0; t < kNumProbeTags; ++t) {
    out.Sample(
        "trel_trace_records_total",
        PrometheusText::Label("tag", ProbeTagName(static_cast<ProbeTag>(t))),
        static_cast<int64_t>(tags[t]));
  }
}

void AppendSlowLogFamilies(PrometheusText& out, const SlowQueryLog& slow) {
  out.Family("trel_slow_queries_total",
             "Queries/batches admitted to the slow-query log.", "counter");
  out.Sample("trel_slow_queries_total", "", slow.TotalRecorded());
}

void AppendFlightFamilies(PrometheusText& out, const FlightRecorder& flight) {
  out.Family("trel_flight_captures_total",
             "Anomaly flight-recorder captures frozen since startup.",
             "counter");
  out.Sample("trel_flight_captures_total", "", flight.TotalTriggered());
}

}  // namespace

std::string RenderMetricsz(const ServiceMetrics::View& view,
                           const QueryTracer* tracer, const SpanLog* spans,
                           const SlowQueryLog* slow,
                           const LatencyRollup* rollup,
                           const FlightRecorder* flight) {
  PrometheusText out;

  // --- ServiceMetrics counters -------------------------------------------
  out.Family("trel_reach_queries_total",
             "Point reachability lookups served (singles and batched).",
             "counter");
  out.Sample("trel_reach_queries_total", "", view.reach_queries);
  out.Family("trel_successor_queries_total",
             "Successor enumeration queries served.", "counter");
  out.Sample("trel_successor_queries_total", "", view.successor_queries);
  out.Family("trel_batches_total", "Batched query calls served.", "counter");
  out.Sample("trel_batches_total", "", view.batches);
  out.Family("trel_batch_micros_total",
             "Wall microseconds spent inside batched query calls.",
             "counter");
  out.Sample("trel_batch_micros_total", "", view.batch_micros_total);
  out.Family("trel_batches_rejected_total",
             "Batches refused by admission control "
             "(max_inflight_batches).",
             "counter");
  out.Sample("trel_batches_rejected_total", "", view.batches_rejected);
  out.Family("trel_publishes_total",
             "Snapshot publishes, split by publish strategy.", "counter");
  out.Sample("trel_publishes_total", "kind=\"delta\"", view.publishes_delta);
  out.Sample("trel_publishes_total", "kind=\"chain_full\"",
             view.publishes_chain_full);
  out.Sample("trel_publishes_total", "kind=\"optimal_full\"",
             view.publishes_optimal_full);
  out.Family("trel_publish_micros_total",
             "Wall microseconds spent publishing, split by strategy.",
             "counter");
  out.Sample("trel_publish_micros_total", "kind=\"delta\"",
             view.publish_delta_micros_total);
  out.Sample("trel_publish_micros_total", "kind=\"chain_full\"",
             view.publish_chain_full_micros_total);
  out.Sample("trel_publish_micros_total", "kind=\"optimal_full\"",
             view.publish_optimal_full_micros_total);
  out.Family("trel_delta_nodes_total",
             "Changed-node entries shipped across all delta publishes.",
             "counter");
  out.Sample("trel_delta_nodes_total", "", view.delta_nodes_total);
  out.Family("trel_batch_kernel_outcomes_total",
             "Batched lookups by deciding path (see BatchKernelStats).",
             "counter");
  out.Sample("trel_batch_kernel_outcomes_total", "outcome=\"fast_path\"",
             view.batch_fast_path);
  out.Sample("trel_batch_kernel_outcomes_total", "outcome=\"filter_reject\"",
             view.batch_filter_rejects);
  out.Sample("trel_batch_kernel_outcomes_total", "outcome=\"group_reject\"",
             view.batch_group_rejects);
  out.Sample("trel_batch_kernel_outcomes_total", "outcome=\"extras_search\"",
             view.batch_extras_searches);

  // --- ServiceMetrics histograms -----------------------------------------
  out.Family("trel_batch_latency_microseconds",
             "Batched query call latency (power-of-two buckets).",
             "histogram");
  out.Histogram("trel_batch_latency_microseconds", "",
                view.batch_latency_histogram.data(),
                ServiceMetrics::kLatencyBuckets, view.batch_micros_total);
  out.Family("trel_publish_delta_nodes",
             "Changed-node entries per delta publish.", "histogram");
  out.Histogram("trel_publish_delta_nodes", "",
                view.delta_nodes_histogram.data(),
                ServiceMetrics::kDeltaNodeBuckets, view.delta_nodes_total);

  // --- Snapshot / dispatch gauges ----------------------------------------
  out.Family("trel_snapshot_epoch", "Epoch of the live snapshot.", "gauge");
  out.Sample("trel_snapshot_epoch", "",
             static_cast<int64_t>(view.current_epoch));
  out.Family("trel_snapshot_age_seconds",
             "Monotonic-clock age of the live snapshot.", "gauge");
  out.Sample("trel_snapshot_age_seconds", "", view.snapshot_age_seconds);
  out.Family("trel_snapshot_nodes", "Nodes in the live snapshot.", "gauge");
  out.Sample("trel_snapshot_nodes", "", view.snapshot_num_nodes);
  out.Family("trel_snapshot_intervals",
             "Compressed-closure intervals in the live snapshot.", "gauge");
  out.Sample("trel_snapshot_intervals", "", view.snapshot_total_intervals);
  out.Family("trel_snapshot_overlay_nodes",
             "Overlaid (delta) nodes in the live snapshot.", "gauge");
  out.Sample("trel_snapshot_overlay_nodes", "", view.snapshot_overlay_nodes);
  out.Family("trel_snapshot_arena_bytes",
             "Bytes pinned by the live snapshot's flat query arena.",
             "gauge");
  out.Sample("trel_snapshot_arena_bytes", "", view.snapshot_arena_bytes);
  out.Family("trel_inflight_batches",
             "Batch calls executing right now (admission-slot occupancy).",
             "gauge");
  out.Sample("trel_inflight_batches", "", view.inflight_batches);
  out.Family("trel_simd_level",
             "Dispatched arena-kernel ISA tier (0=scalar,1=sse,2=avx2).",
             "gauge");
  out.Sample("trel_simd_level",
             PrometheusText::Label("name", view.simd_level_name),
             static_cast<int64_t>(view.simd_level));
  out.Family("trel_index_family",
             "Index family serving the live snapshot "
             "(0=intervals,1=trees,2=hop).",
             "gauge");
  out.Sample("trel_index_family",
             PrometheusText::Label("name", view.index_family_name),
             static_cast<int64_t>(view.index_family));
  out.Family("trel_family_label_bytes",
             "Label footprint of the live snapshot's selected family.",
             "gauge");
  out.Sample("trel_family_label_bytes", "", view.family_label_bytes);
  out.Family("trel_family_selects_total",
             "Full publishes that selected each index family.", "counter");
  for (int f = 0; f < kNumIndexFamilies; ++f) {
    out.Sample("trel_family_selects_total",
               PrometheusText::Label(
                   "family", IndexFamilyName(static_cast<IndexFamily>(f))),
               view.family_selects[f]);
  }
  out.Family("trel_publish_strategy",
             "Strategy of the most recent publish (by name label; value is "
             "the PublishStrategy enum, -1 before the first publish).",
             "gauge");
  {
    int64_t last = -1;
    for (int s = 0; s < kNumPublishStrategies; ++s) {
      if (view.last_publish_strategy ==
          PublishStrategyName(static_cast<PublishStrategy>(s))) {
        last = s;
      }
    }
    out.Sample("trel_publish_strategy",
               PrometheusText::Label("name", view.last_publish_strategy),
               last);
  }
  out.Family("trel_publish_intervals_last",
             "Snapshot interval count at the most recent full publish of "
             "each kind (chain-vs-optimal interval blowup numerator and "
             "denominator).",
             "gauge");
  out.Sample("trel_publish_intervals_last", "kind=\"chain_full\"",
             view.chain_full_intervals_last);
  out.Sample("trel_publish_intervals_last", "kind=\"optimal_full\"",
             view.optimal_full_intervals_last);
  out.Family("trel_chain_interval_blowup",
             "Last chain-full interval count over last optimal-full count "
             "(0 until both tiers have published).",
             "gauge");
  out.Sample("trel_chain_interval_blowup", "", view.chain_interval_blowup);

  // --- Publish-pipeline spans --------------------------------------------
  if (spans != nullptr) {
    const SpanLog::Aggregate agg = spans->Read();
    out.Family("trel_publish_phase_micros_total",
               "Wall microseconds per publish phase, split by strategy.",
               "counter");
    for (int kind = 0; kind < kNumPublishStrategies; ++kind) {
      for (int phase = 0; phase < kNumPublishPhases; ++phase) {
        out.Sample("trel_publish_phase_micros_total",
                   KindPhaseLabels(kind, phase),
                   agg.phase_micros_total[kind][phase]);
      }
    }
    out.Family("trel_publish_phase_microseconds",
               "Per-publish phase latency (power-of-two buckets).",
               "histogram");
    for (int kind = 0; kind < kNumPublishStrategies; ++kind) {
      for (int phase = 0; phase < kNumPublishPhases; ++phase) {
        out.Histogram("trel_publish_phase_microseconds",
                      KindPhaseLabels(kind, phase),
                      agg.phase_histogram[kind][phase].data(),
                      SpanLog::kBuckets, agg.phase_micros_total[kind][phase]);
      }
    }
  }

  // --- Tracer summary -----------------------------------------------------
  if (tracer != nullptr) AppendTracerFamilies(out, *tracer);

  // --- Slow-query log ------------------------------------------------------
  if (slow != nullptr) AppendSlowLogFamilies(out, *slow);

  // --- Windowed latency + flight recorder ----------------------------------
  if (rollup != nullptr) AppendLatencyWindows(out, *rollup);
  if (flight != nullptr) AppendFlightFamilies(out, *flight);

  return out.str();
}

std::string RenderStatusz(const ServiceMetrics::View& view,
                          const SpanLog* spans,
                          const LatencyRollup* rollup) {
  std::ostringstream out;
  out << "trel query service status\n";
  out << "epoch: " << view.current_epoch << "\n";
  out << "snapshot_age_seconds: " << view.snapshot_age_seconds << "\n";
  out << "nodes: " << view.snapshot_num_nodes
      << "  intervals: " << view.snapshot_total_intervals
      << "  overlay_nodes: " << view.snapshot_overlay_nodes << "\n";
  out << "arena_bytes: " << view.snapshot_arena_bytes << "\n";
  out << "simd: " << view.simd_level_name << " (level " << view.simd_level
      << ")\n";
  out << "index_family: " << view.index_family_name
      << " (label_bytes " << view.family_label_bytes << ")\n";
  out << "queries: reach=" << view.reach_queries
      << " successor=" << view.successor_queries
      << " batches=" << view.batches << "\n";
  out << "publishes: full=" << view.publishes_full
      << " delta=" << view.publishes_delta
      << " (us: full=" << view.publish_full_micros_total
      << " delta=" << view.publish_delta_micros_total << ")\n";
  out << "publish_strategy: last=" << view.last_publish_strategy
      << " chain_full=" << view.publishes_chain_full
      << " optimal_full=" << view.publishes_optimal_full
      << " chain_blowup=" << view.chain_interval_blowup << "\n";
  if (spans != nullptr) {
    const SpanLog::Aggregate agg = spans->Read();
    for (int kind = 0; kind < kNumPublishStrategies; ++kind) {
      if (agg.count[kind] == 0) continue;
      out << "publish_phases_avg_us{" << KindName(kind) << "}:";
      for (int phase = 0; phase < kNumPublishPhases; ++phase) {
        out << " " << PublishPhaseName(static_cast<PublishPhase>(phase)) << "="
            << agg.phase_micros_total[kind][phase] / agg.count[kind];
      }
      out << "\n";
    }
  }
  if (rollup != nullptr) AppendLatencyWindowsStatus(out, *rollup);
  // The raw counter line: /metricsz must agree with it field for field
  // (the --obs CI stage scrapes both and diffs them on a quiescent
  // server).
  out << "metrics: " << view.ToString() << "\n";
  return out.str();
}

std::string RenderTracez(const QueryTracer* tracer, const SlowQueryLog* slow) {
  std::ostringstream out;
  if (tracer != nullptr) {
    out << "sample_period: " << tracer->sample_period() << "\n";
    out << "sampled_total: " << tracer->TotalSampled() << "\n";
    const std::array<uint64_t, kNumProbeTags> tags = tracer->TagCounts();
    out << "tag_counts:";
    for (int t = 0; t < kNumProbeTags; ++t) {
      out << " " << ProbeTagName(static_cast<ProbeTag>(t)) << "=" << tags[t];
    }
    out << "\n";
    const std::vector<TraceRecord> records = tracer->Drain();
    out << "records: " << records.size() << " (oldest first)\n";
    for (const TraceRecord& r : records) {
      out << "seq=" << r.sequence << " epoch=" << r.epoch << " src=" << r.source
          << " dst=" << r.target << " answer=" << (r.answer ? 1 : 0)
          << " tag=" << ProbeTagName(r.tag) << " probes=" << r.extras_probes
          << " nanos=" << r.nanos << " batch=" << (r.from_batch ? 1 : 0);
      if (r.has_stages) {
        out << " shard=" << r.shard << " stages=[";
        for (int s = 0; s < kNumQueryStages; ++s) {
          if (s > 0) out << " ";
          out << QueryStageName(static_cast<QueryStage>(s)) << "="
              << r.stage_nanos[s];
        }
        out << "]";
      }
      out << "\n";
    }
  }
  if (slow != nullptr) {
    const std::vector<SlowQueryEntry> entries = slow->Recent();
    out << "slow_queries: " << entries.size() << " (total admitted "
        << slow->TotalRecorded() << ")\n";
    for (const SlowQueryEntry& e : entries) {
      out << e.ToString() << "\n";
    }
  }
  return out.str();
}

std::string RenderMetricsz(const QueryService& service) {
  // A metrics scrape doubles as a flight-recorder detector pass, so
  // anomalies are caught even when nobody polls /flightz.
  service.CheckFlightRecorder();
  return RenderMetricsz(service.Metrics(), &service.tracer(),
                        &service.span_log(), &service.slow_log(),
                        &service.rollup(), &service.flight_recorder());
}

std::string RenderStatusz(const QueryService& service) {
  return RenderStatusz(service.Metrics(), &service.span_log(),
                       &service.rollup());
}

std::string RenderTracez(const QueryService& service) {
  return RenderTracez(&service.tracer(), &service.slow_log());
}

std::string RenderFlightz(const QueryService& service) {
  service.CheckFlightRecorder();
  return service.flight_recorder().ToJson();
}

std::string RenderMetricsz(const ShardedQueryService& service) {
  service.CheckFlightRecorder();
  PrometheusText out;
  const ShardedMetricsView view = service.MetricsView();

  // --- Boundary-layer families -------------------------------------------
  out.Family("trel_sharded_shards", "Configured shard count.", "gauge");
  out.Sample("trel_sharded_shards", "",
             static_cast<int64_t>(view.num_shards));
  out.Family("trel_sharded_epoch", "Global sharded publish epoch.", "gauge");
  out.Sample("trel_sharded_epoch", "", static_cast<int64_t>(view.epoch));
  out.Family("trel_sharded_nodes",
             "Nodes known to the published boundary snapshot.", "gauge");
  out.Sample("trel_sharded_nodes", "", view.num_nodes);
  out.Family("trel_boundary_hubs",
             "Hub nodes covering the cross-shard cut.", "gauge");
  out.Sample("trel_boundary_hubs", "", view.num_hubs);
  out.Family("trel_boundary_label_bytes",
             "Bytes of published boundary labels (hub bitsets + hub-core "
             "2-hop labels).",
             "gauge");
  out.Sample("trel_boundary_label_bytes", "", view.boundary_label_bytes);
  out.Family("trel_cross_shard_queries_total",
             "Reaches lookups whose endpoints lived in different shards.",
             "counter");
  out.Sample("trel_cross_shard_queries_total", "", view.cross_shard_queries);
  out.Family("trel_hub_hop_queries_total",
             "Hub-pair lookups answered by the hub-core 2-hop index.",
             "counter");
  out.Sample("trel_hub_hop_queries_total", "", view.hub_hop_queries);
  out.Family("trel_boundary_republishes_total",
             "Boundary snapshot publishes that rebuilt state.", "counter");
  out.Sample("trel_boundary_republishes_total", "", view.boundary_republishes);
  out.Family("trel_boundary_skips_total",
             "Boundary publishes skipped because nothing changed.",
             "counter");
  out.Sample("trel_boundary_skips_total", "", view.boundary_skips);
  out.Family("trel_hub_promotions_total",
             "Nodes promoted to hub by cross-shard arc inserts.", "counter");
  out.Sample("trel_hub_promotions_total", "", view.hub_promotions);

  // --- Per-shard families -------------------------------------------------
  // Sample lines of a family must stay contiguous under its header, so
  // iterate shards inside each family rather than the other way around.
  std::vector<ServiceMetrics::View> shard_views;
  std::vector<std::string> shard_labels;
  shard_views.reserve(service.num_shards());
  shard_labels.reserve(service.num_shards());
  for (int s = 0; s < service.num_shards(); ++s) {
    shard_views.push_back(service.shard(s).Metrics());
    shard_labels.push_back(
        PrometheusText::Label("shard", std::to_string(s)));
  }
  out.Family("trel_shard_reach_queries_total",
             "Point lookups resolved inside each shard.", "counter");
  for (int s = 0; s < service.num_shards(); ++s) {
    out.Sample("trel_shard_reach_queries_total", shard_labels[s],
               shard_views[s].reach_queries);
  }
  out.Family("trel_shard_batches_total",
             "Batched calls fanned into each shard.", "counter");
  for (int s = 0; s < service.num_shards(); ++s) {
    out.Sample("trel_shard_batches_total", shard_labels[s],
               shard_views[s].batches);
  }
  out.Family("trel_shard_publishes_total",
             "Per-shard snapshot publishes, split by strategy.", "counter");
  for (int s = 0; s < service.num_shards(); ++s) {
    out.Sample("trel_shard_publishes_total",
               shard_labels[s] + ",kind=\"delta\"",
               shard_views[s].publishes_delta);
    out.Sample("trel_shard_publishes_total",
               shard_labels[s] + ",kind=\"chain_full\"",
               shard_views[s].publishes_chain_full);
    out.Sample("trel_shard_publishes_total",
               shard_labels[s] + ",kind=\"optimal_full\"",
               shard_views[s].publishes_optimal_full);
  }
  out.Family("trel_shard_snapshot_epoch",
             "Epoch of each shard's live snapshot.", "gauge");
  for (int s = 0; s < service.num_shards(); ++s) {
    out.Sample("trel_shard_snapshot_epoch", shard_labels[s],
               static_cast<int64_t>(shard_views[s].current_epoch));
  }
  out.Family("trel_shard_snapshot_nodes",
             "Nodes in each shard's live snapshot.", "gauge");
  for (int s = 0; s < service.num_shards(); ++s) {
    out.Sample("trel_shard_snapshot_nodes", shard_labels[s],
               shard_views[s].snapshot_num_nodes);
  }

  // --- Front-end observability -------------------------------------------
  AppendTracerFamilies(out, service.tracer());
  AppendSlowLogFamilies(out, service.slow_log());
  AppendLatencyWindows(out, service.rollup());
  AppendFlightFamilies(out, service.flight_recorder());
  return out.str();
}

std::string RenderStatusz(const ShardedQueryService& service) {
  std::ostringstream out;
  const ShardedMetricsView view = service.MetricsView();
  out << "trel sharded query service status\n";
  out << "shards: " << view.num_shards << "\n";
  out << "epoch: " << view.epoch << "\n";
  out << "nodes: " << view.num_nodes << "  hubs: " << view.num_hubs
      << "  boundary_label_bytes: " << view.boundary_label_bytes << "\n";
  out << "cross_shard: queries=" << view.cross_shard_queries
      << " hub_hop=" << view.hub_hop_queries << "\n";
  out << "boundary_publishes: republished=" << view.boundary_republishes
      << " skipped=" << view.boundary_skips
      << " hub_promotions=" << view.hub_promotions << "\n";
  for (int s = 0; s < service.num_shards(); ++s) {
    const ServiceMetrics::View shard = service.shard(s).Metrics();
    out << "shard[" << s << "]: epoch=" << shard.current_epoch
        << " nodes=" << shard.snapshot_num_nodes
        << " reach=" << shard.reach_queries << " batches=" << shard.batches
        << " publishes full=" << shard.publishes_full
        << " delta=" << shard.publishes_delta << "\n";
  }
  AppendLatencyWindowsStatus(out, service.rollup());
  // Machine-checkable raw line, mirroring the monolithic `metrics:` line
  // (the --obs CI stage diffs it against /metricsz).
  out << "boundary_metrics: " << view.ToString() << "\n";
  return out.str();
}

std::string RenderTracez(const ShardedQueryService& service) {
  return RenderTracez(&service.tracer(), &service.slow_log());
}

std::string RenderFlightz(const ShardedQueryService& service) {
  service.CheckFlightRecorder();
  return service.flight_recorder().ToJson();
}

}  // namespace trel
